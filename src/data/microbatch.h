// Microbatch transformations (Fig. 1 middle stage): packing fragmented
// subsequences into complete sequences with segment masks, padding, and RoPE
// position assignment.
#ifndef SRC_DATA_MICROBATCH_H_
#define SRC_DATA_MICROBATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/data/sample.h"
#include "src/data/token_buffer.h"

namespace msd {

// Sentinel token ids used when materializing packed payloads.
inline constexpr int32_t kImagePatchToken = -1;
inline constexpr int32_t kPadToken = -2;

// One packed training sequence assembled from one or more sample subsequences.
// Token payloads are zero-copy views (see payload_buffer.h): the constructor
// materializes each padded sequence exactly once, and every rank batch that
// shares the sequence (TP replicas, CP slices, resident steps) aliases that
// frozen storage instead of copying it. Pixel payloads never materialize at
// all on the zero-copy plane: each visual segment's view aliases the frozen
// buffer the loader's decode produced (usually a whole row-group arena slab).
struct PackedSequence {
  std::vector<uint64_t> sample_ids;
  std::vector<int32_t> segment_lengths;  // tokens contributed by each sample
  TokenView tokens;                      // concatenated token ids (real mode)
  TokenView position_ids;                // RoPE positions, restarting per segment
  // Patch-embedding inputs per segment (parallel to sample_ids; empty views
  // for pure-text segments). Slot i backs the kImagePatchToken sentinels of
  // segment i, truncated with it. Pixels ride whole with the sequence at
  // every CP coordinate — the token stream is what CP slices; patch
  // embeddings are injected model-side at sentinel positions.
  std::vector<PixelView> pixel_segments;
  int32_t total_tokens = 0;              // sum of segment_lengths
  int32_t padded_to = 0;                 // 0 until padding runs

  int32_t PaddingTokens() const { return padded_to > 0 ? padded_to - total_tokens : 0; }
  // Patch-embedding slots carried by this sequence's pixel views.
  int64_t PixelCount() const;
};

struct Microbatch {
  int32_t microbatch_index = 0;
  std::vector<PackedSequence> sequences;

  int64_t TotalTokens() const;
  int64_t TotalPaddingTokens() const;
};

// First-fit-decreasing packing of sample token counts into sequences of at
// most max_seq_len tokens. Samples longer than max_seq_len are truncated to it
// (the paper notes max sequence length only bounds backbone tokens).
// Metadata-only: fills sample_ids/segment_lengths, not token payloads.
std::vector<PackedSequence> PackSequences(const std::vector<SampleMeta>& samples,
                                          int32_t max_seq_len);

// Fills token payloads of a packed sequence from materialized samples
// (real mode). Samples must appear in the same order as sample_ids. The
// payload (and its RoPE positions) is built in one pass and frozen once;
// when `pad_to` > 0 the padding is emitted in the same pass, so the hot
// assembly path never re-materializes a sequence to pad it.
Status FillPackedTokens(PackedSequence& seq, const std::vector<const Sample*>& samples,
                        int32_t pad_to = 0);
// Convenience overload for callers holding sample values (tests, tools).
Status FillPackedTokens(PackedSequence& seq, const std::vector<Sample>& samples);

// Pads every sequence in the microbatch to the batch max (or `pad_to` if
// nonzero) and assigns RoPE position ids (restarting at each segment start).
// Sequences whose payload is already materialized are re-frozen at the padded
// width (one copy); prefer FillPackedTokens(pad_to) on hot paths.
void PadMicrobatch(Microbatch& mb, int32_t pad_to = 0);

// Positions for one packed sequence: 0..len-1 within each segment.
std::vector<int32_t> RopePositions(const PackedSequence& seq);

}  // namespace msd

#endif  // SRC_DATA_MICROBATCH_H_
