// Refcounted immutable token storage — the backbone of the zero-copy data
// plane (loader -> constructor -> rank batch).
//
// Ownership model
//   TokenBuffer  owns a frozen `std::vector<int32_t>` behind a
//                `std::shared_ptr<const ...>`. Once wrapped, the payload is
//                immutable for its whole life; "copying" a TokenBuffer only
//                bumps the refcount.
//   TokenView    is a (buffer, offset, length) triple: a borrowed window into
//                a TokenBuffer. Views are what travel inside PackedSequence
//                and RankBatch; slicing a view is O(1) and allocation-free.
//
// Aliasing invariants
//   - A buffer's payload is never mutated after construction, so any number
//     of views (across threads, actors, and rank batches) may alias it
//     concurrently without synchronization.
//   - Producers (tokenizer, constructor assembly) build a plain
//     `std::vector<int32_t>` privately and freeze it exactly once; the freeze
//     is the only full copy the data plane pays per payload.
//   - Consumers that need contiguous owned storage (wire serialization,
//     golden tests) call ToVector(), which is an explicit, accounted copy.
//
// Accounting: every freeze and every ToVector() adds to the global
// TokenPlaneStats counters, which is how bench_dataplane_throughput proves
// the zero-copy plane materializes strictly fewer bytes than the scalar
// reference plane.
#ifndef SRC_DATA_TOKEN_BUFFER_H_
#define SRC_DATA_TOKEN_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace msd {

// Global counters for token-payload materialization (freeze + copy-out).
// Cheap relaxed atomics; used by benches and tests to assert copy budgets.
struct TokenPlaneStats {
  static std::atomic<int64_t>& MaterializedBytes() {
    static std::atomic<int64_t> bytes{0};
    return bytes;
  }
  static std::atomic<int64_t>& BuffersFrozen() {
    static std::atomic<int64_t> count{0};
    return count;
  }
  static void Reset() {
    MaterializedBytes().store(0, std::memory_order_relaxed);
    BuffersFrozen().store(0, std::memory_order_relaxed);
  }
};

class TokenBuffer {
 public:
  using const_iterator = std::vector<int32_t>::const_iterator;

  TokenBuffer() = default;

  // Freezes a vector into an immutable shared payload. Implicit on purpose:
  // `sample.tokens = tokenizer.Encode(text);` is the producer idiom.
  TokenBuffer(std::vector<int32_t> values)
      : data_(std::make_shared<const std::vector<int32_t>>(std::move(values))) {
    TokenPlaneStats::MaterializedBytes().fetch_add(
        static_cast<int64_t>(data_->size() * sizeof(int32_t)), std::memory_order_relaxed);
    TokenPlaneStats::BuffersFrozen().fetch_add(1, std::memory_order_relaxed);
  }
  TokenBuffer(std::initializer_list<int32_t> values)
      : TokenBuffer(std::vector<int32_t>(values)) {}

  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const int32_t* data() const { return data_ ? data_->data() : nullptr; }
  int32_t operator[](size_t i) const { return (*data_)[i]; }

  const_iterator begin() const { return data_ ? data_->begin() : EmptyVec().begin(); }
  const_iterator end() const { return data_ ? data_->end() : EmptyVec().end(); }

  const std::vector<int32_t>& vec() const { return data_ ? *data_ : EmptyVec(); }

  // Number of owners of the underlying payload (0 for the null buffer).
  long use_count() const { return data_.use_count(); }
  bool SharesStorageWith(const TokenBuffer& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  // Content equality (not identity).
  friend bool operator==(const TokenBuffer& a, const TokenBuffer& b) {
    return a.vec() == b.vec();
  }

 private:
  static const std::vector<int32_t>& EmptyVec() {
    static const std::vector<int32_t> empty;
    return empty;
  }

  std::shared_ptr<const std::vector<int32_t>> data_;
};

class TokenView {
 public:
  using const_iterator = const int32_t*;

  TokenView() = default;

  // Whole-buffer view. Implicit: a frozen buffer is trivially viewable.
  TokenView(TokenBuffer buffer) : buffer_(std::move(buffer)) { length_ = buffer_.size(); }

  // Freeze-and-view, the producer shorthand (`seq.tokens = std::move(vec);`).
  TokenView(std::vector<int32_t> values) : TokenView(TokenBuffer(std::move(values))) {}

  TokenView(TokenBuffer buffer, size_t offset, size_t length)
      : buffer_(std::move(buffer)), offset_(offset), length_(length) {}

  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  const int32_t* data() const { return buffer_.data() + offset_; }
  int32_t operator[](size_t i) const { return buffer_[offset_ + i]; }

  const_iterator begin() const { return buffer_.data() + offset_; }
  const_iterator end() const { return buffer_.data() + offset_ + length_; }

  // O(1) sub-window sharing the same storage.
  TokenView Slice(size_t offset, size_t length) const {
    return TokenView(buffer_, offset_ + offset, length);
  }

  // Explicit, accounted copy-out for consumers that must own the payload.
  std::vector<int32_t> ToVector() const {
    TokenPlaneStats::MaterializedBytes().fetch_add(
        static_cast<int64_t>(length_ * sizeof(int32_t)), std::memory_order_relaxed);
    return std::vector<int32_t>(begin(), end());
  }

  const TokenBuffer& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }
  bool AliasesStorageOf(const TokenView& other) const {
    return buffer_.SharesStorageWith(other.buffer_);
  }

  // Content equality (not identity) — two views over different buffers with
  // the same token stream compare equal.
  friend bool operator==(const TokenView& a, const TokenView& b) {
    if (a.length_ != b.length_) {
      return false;
    }
    for (size_t i = 0; i < a.length_; ++i) {
      if (a[i] != b[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  TokenBuffer buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

}  // namespace msd

#endif  // SRC_DATA_TOKEN_BUFFER_H_
