// Token payload storage. Since the multimodal payload plane landed, the token
// types are instantiations of the generic PayloadBuffer/PayloadView family —
// see payload_buffer.h for the ownership model, aliasing invariants, and
// accounting. This header survives as the historical include path for
// token-only call sites.
#ifndef SRC_DATA_TOKEN_BUFFER_H_
#define SRC_DATA_TOKEN_BUFFER_H_

#include "src/data/payload_buffer.h"

#endif  // SRC_DATA_TOKEN_BUFFER_H_
