// Refcounted immutable payload storage — the backbone of the zero-copy data
// plane (loader -> constructor -> rank batch), generalized over the payload
// element type so token streams (int32) and pixel/patch-embedding payloads
// (float) share one ownership model.
//
// Ownership model
//   PayloadBuffer<T>  owns a frozen `std::vector<T>` behind a
//                     `std::shared_ptr<const ...>`. Once wrapped, the payload
//                     is immutable for its whole life; "copying" a buffer only
//                     bumps the refcount.
//   PayloadView<T>    is a (buffer, offset, length) triple: a borrowed window
//                     into a PayloadBuffer. Views are what travel inside
//                     Sample, PackedSequence, and RankBatch; slicing a view is
//                     O(1) and allocation-free.
//
// Aliasing invariants
//   - A buffer's payload is never mutated after construction, so any number
//     of views (across threads, actors, and rank batches) may alias it
//     concurrently without synchronization.
//   - Producers (tokenizer, image decode, constructor assembly, row-group
//     arenas) build a plain `std::vector<T>` privately and freeze it exactly
//     once; the freeze is the only materialization the data plane pays per
//     payload. Arena-backed decode freezes one slab per row group and hands
//     each sample an O(1) sub-window of it (see payload_arena.h).
//   - Consumers that need contiguous owned storage (wire serialization,
//     golden tests) call ToVector(), which is an explicit, accounted copy.
//
// Accounting: every freeze and every ToVector() adds to the per-kind
// PayloadPlaneStats counters, which is how bench_dataplane_throughput proves
// the zero-copy plane materializes strictly fewer bytes than the scalar
// reference plane — and that the pixel path copies nothing at all.
#ifndef SRC_DATA_PAYLOAD_BUFFER_H_
#define SRC_DATA_PAYLOAD_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace msd {

// Payload families tracked separately by the copy/freeze accounting.
enum class PayloadKind : int { kTokens = 0, kPixels = 1 };
inline constexpr int kNumPayloadKinds = 2;

// Maps an element type to its accounting family.
template <typename T>
struct PayloadTraits;
template <>
struct PayloadTraits<int32_t> {
  static constexpr PayloadKind kKind = PayloadKind::kTokens;
};
template <>
struct PayloadTraits<float> {
  static constexpr PayloadKind kKind = PayloadKind::kPixels;
};

// Global counters for payload materialization, per payload kind. Cheap
// relaxed atomics; used by benches and tests to assert copy budgets.
//   MaterializedBytes  bytes frozen into immutable buffers plus bytes copied
//                      out via ToVector() (the scalar plane's total traffic).
//   BuffersFrozen      freeze events (one per immutable buffer created).
//   CopiedOutBytes     explicit copy-outs only (ToVector). Zero on the hot
//                      path: the zero-copy plane serves views, never copies.
//   ArenaSlabsFrozen   slabs frozen by row-group arenas (payload_arena.h);
//                      the allocator-pressure win is rows-per-group / slabs.
struct PayloadPlaneStats {
  static std::atomic<int64_t>& MaterializedBytes(PayloadKind kind) {
    static std::atomic<int64_t> bytes[kNumPayloadKinds];
    return bytes[static_cast<int>(kind)];
  }
  static std::atomic<int64_t>& BuffersFrozen(PayloadKind kind) {
    static std::atomic<int64_t> count[kNumPayloadKinds];
    return count[static_cast<int>(kind)];
  }
  static std::atomic<int64_t>& CopiedOutBytes(PayloadKind kind) {
    static std::atomic<int64_t> bytes[kNumPayloadKinds];
    return bytes[static_cast<int>(kind)];
  }
  static std::atomic<int64_t>& ArenaSlabsFrozen() {
    static std::atomic<int64_t> count{0};
    return count;
  }
  static void Reset() {
    for (int k = 0; k < kNumPayloadKinds; ++k) {
      MaterializedBytes(static_cast<PayloadKind>(k)).store(0, std::memory_order_relaxed);
      BuffersFrozen(static_cast<PayloadKind>(k)).store(0, std::memory_order_relaxed);
      CopiedOutBytes(static_cast<PayloadKind>(k)).store(0, std::memory_order_relaxed);
    }
    ArenaSlabsFrozen().store(0, std::memory_order_relaxed);
  }
};

template <typename T>
class PayloadBuffer {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;
  static constexpr PayloadKind kKind = PayloadTraits<T>::kKind;

  PayloadBuffer() = default;

  // Freezes a vector into an immutable shared payload. Implicit on purpose:
  // `sample.tokens = tokenizer.Encode(text);` is the producer idiom.
  PayloadBuffer(std::vector<T> values)
      : data_(std::make_shared<const std::vector<T>>(std::move(values))) {
    PayloadPlaneStats::MaterializedBytes(kKind).fetch_add(
        static_cast<int64_t>(data_->size() * sizeof(T)), std::memory_order_relaxed);
    PayloadPlaneStats::BuffersFrozen(kKind).fetch_add(1, std::memory_order_relaxed);
  }
  PayloadBuffer(std::initializer_list<T> values)
      : PayloadBuffer(std::vector<T>(values)) {}

  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const T* data() const { return data_ ? data_->data() : nullptr; }
  T operator[](size_t i) const { return (*data_)[i]; }

  const_iterator begin() const { return data_ ? data_->begin() : EmptyVec().begin(); }
  const_iterator end() const { return data_ ? data_->end() : EmptyVec().end(); }

  const std::vector<T>& vec() const { return data_ ? *data_ : EmptyVec(); }

  // Number of owners of the underlying payload (0 for the null buffer).
  long use_count() const { return data_.use_count(); }
  bool SharesStorageWith(const PayloadBuffer& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  // Content equality (not identity).
  friend bool operator==(const PayloadBuffer& a, const PayloadBuffer& b) {
    return a.vec() == b.vec();
  }

 private:
  static const std::vector<T>& EmptyVec() {
    static const std::vector<T> empty;
    return empty;
  }

  std::shared_ptr<const std::vector<T>> data_;
};

template <typename T>
class PayloadView {
 public:
  using value_type = T;
  using const_iterator = const T*;
  static constexpr PayloadKind kKind = PayloadTraits<T>::kKind;

  PayloadView() = default;

  // Whole-buffer view. Implicit: a frozen buffer is trivially viewable.
  PayloadView(PayloadBuffer<T> buffer) : buffer_(std::move(buffer)) {
    length_ = buffer_.size();
  }

  // Freeze-and-view, the producer shorthand (`seq.tokens = std::move(vec);`).
  PayloadView(std::vector<T> values) : PayloadView(PayloadBuffer<T>(std::move(values))) {}
  PayloadView(std::initializer_list<T> values)
      : PayloadView(PayloadBuffer<T>(std::vector<T>(values))) {}

  PayloadView(PayloadBuffer<T> buffer, size_t offset, size_t length)
      : buffer_(std::move(buffer)), offset_(offset), length_(length) {}

  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  const T* data() const { return buffer_.data() + offset_; }
  T operator[](size_t i) const { return buffer_[offset_ + i]; }

  const_iterator begin() const { return buffer_.data() + offset_; }
  const_iterator end() const { return buffer_.data() + offset_ + length_; }

  // O(1) sub-window sharing the same storage.
  PayloadView Slice(size_t offset, size_t length) const {
    return PayloadView(buffer_, offset_ + offset, length);
  }

  // Explicit, accounted copy-out for consumers that must own the payload.
  std::vector<T> ToVector() const {
    PayloadPlaneStats::MaterializedBytes(kKind).fetch_add(
        static_cast<int64_t>(length_ * sizeof(T)), std::memory_order_relaxed);
    PayloadPlaneStats::CopiedOutBytes(kKind).fetch_add(
        static_cast<int64_t>(length_ * sizeof(T)), std::memory_order_relaxed);
    return std::vector<T>(begin(), end());
  }

  const PayloadBuffer<T>& buffer() const { return buffer_; }
  size_t offset() const { return offset_; }
  bool AliasesStorageOf(const PayloadView& other) const {
    return buffer_.SharesStorageWith(other.buffer_);
  }

  // Content equality (not identity) — two views over different buffers with
  // the same payload compare equal.
  friend bool operator==(const PayloadView& a, const PayloadView& b) {
    if (a.length_ != b.length_) {
      return false;
    }
    for (size_t i = 0; i < a.length_; ++i) {
      if (a[i] != b[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  PayloadBuffer<T> buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

// The two payload families of the data plane.
using TokenBuffer = PayloadBuffer<int32_t>;
using TokenView = PayloadView<int32_t>;
using PixelBuffer = PayloadBuffer<float>;
using PixelView = PayloadView<float>;

// Back-compat shims for the pre-PayloadBuffer token-only accounting: the
// token-plane counters now read the kTokens family (freeze + copy-out).
struct TokenPlaneStats {
  static std::atomic<int64_t>& MaterializedBytes() {
    return PayloadPlaneStats::MaterializedBytes(PayloadKind::kTokens);
  }
  static std::atomic<int64_t>& BuffersFrozen() {
    return PayloadPlaneStats::BuffersFrozen(PayloadKind::kTokens);
  }
  static void Reset() { PayloadPlaneStats::Reset(); }
};

}  // namespace msd

#endif  // SRC_DATA_PAYLOAD_BUFFER_H_
