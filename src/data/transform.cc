#include "src/data/transform.h"

#include <algorithm>
#include <cmath>

namespace msd {

SimTime SampleTransformLatency(const SampleMeta& meta, double source_cost_multiplier,
                               const TransformCostParams& params) {
  double us = static_cast<double>(meta.text_tokens) * params.text_us_per_token;
  double visual_rate = 0.0;
  switch (meta.modality) {
    case Modality::kText:
      break;
    case Modality::kImageText:
      visual_rate = params.image_us_per_token;
      break;
    case Modality::kVideo:
      visual_rate = params.video_us_per_token;
      break;
    case Modality::kAudio:
      visual_rate = params.audio_us_per_token;
      break;
  }
  us += static_cast<double>(meta.image_tokens) * visual_rate;
  return static_cast<SimTime>(us * source_cost_multiplier);
}

Result<SimTime> TextTokenize::Apply(Sample& sample) const {
  sample.tokens = tokenizer_->Encode(sample.raw_text);
  // Keep metadata authoritative: generators size raw_text so Encode() matches
  // meta.text_tokens; enforce the contract here.
  if (sample.meta.text_tokens != static_cast<int32_t>(sample.tokens.size())) {
    sample.meta.text_tokens = static_cast<int32_t>(sample.tokens.size());
  }
  SampleMeta text_only = sample.meta;
  text_only.image_tokens = 0;
  text_only.modality = Modality::kText;
  return SampleTransformLatency(text_only, 1.0, params_);
}

Result<SimTime> ImageDecode::Apply(Sample& sample) const {
  if (sample.meta.image_tokens == 0) {
    return SimTime{0};
  }
  if (sample.raw_image.empty()) {
    return Status::FailedPrecondition("ImageDecode on sample without raw image bytes");
  }
  // "Decode": expand compressed bytes into one float per patch slot with a
  // cheap deterministic kernel (stands in for JPEG->RGB + normalization).
  sample.pixels.resize(static_cast<size_t>(sample.meta.image_tokens));
  uint32_t state = 0x9E3779B9u ^ static_cast<uint32_t>(sample.raw_image.size());
  for (size_t i = 0; i < sample.pixels.size(); ++i) {
    state ^= static_cast<uint8_t>(sample.raw_image[i % sample.raw_image.size()]);
    state = state * 1664525u + 1013904223u;
    sample.pixels[i] = static_cast<float>(state >> 8) / 16777216.0f;
  }
  SampleMeta image_only = sample.meta;
  image_only.text_tokens = 0;
  return SampleTransformLatency(image_only, 1.0, params_);
}

Result<SimTime> CropToPatches::Apply(Sample& sample) const {
  if (max_patches_ <= 0) {
    return Status::InvalidArgument("max_patches must be positive");
  }
  if (sample.meta.image_tokens > max_patches_) {
    sample.meta.image_tokens = max_patches_;
    if (!sample.pixels.empty()) {
      sample.pixels.resize(static_cast<size_t>(max_patches_));
    }
  }
  // Cropping is a cheap memmove relative to decode: charge 1% of decode cost.
  SampleMeta image_only = sample.meta;
  image_only.text_tokens = 0;
  return SampleTransformLatency(image_only, 0.01);
}

Result<SimTime> TransformPipeline::Apply(Sample& sample) const {
  SimTime total = 0;
  for (const auto& stage : stages_) {
    Result<SimTime> cost = stage->Apply(sample);
    if (!cost.ok()) {
      return cost.status();
    }
    total += cost.value();
  }
  return total;
}

TransformPipeline TransformPipeline::Default(Modality modality,
                                             std::shared_ptr<const Tokenizer> tokenizer) {
  TransformPipeline p;
  p.Add(std::make_unique<TextTokenize>(std::move(tokenizer)));
  if (modality != Modality::kText) {
    p.Add(std::make_unique<ImageDecode>());
  }
  return p;
}

}  // namespace msd
