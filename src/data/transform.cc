#include "src/data/transform.h"

#include <algorithm>
#include <cmath>

namespace msd {

SimTime SampleTransformLatency(const SampleMeta& meta, double source_cost_multiplier,
                               const TransformCostParams& params) {
  double us = static_cast<double>(meta.text_tokens) * params.text_us_per_token;
  double visual_rate = 0.0;
  switch (meta.modality) {
    case Modality::kText:
      break;
    case Modality::kImageText:
      visual_rate = params.image_us_per_token;
      break;
    case Modality::kVideo:
      visual_rate = params.video_us_per_token;
      break;
    case Modality::kAudio:
      visual_rate = params.audio_us_per_token;
      break;
  }
  us += static_cast<double>(meta.image_tokens) * visual_rate;
  return static_cast<SimTime>(us * source_cost_multiplier);
}

namespace {

// "Decode": expand compressed bytes into one float per patch slot with a
// cheap deterministic kernel (stands in for JPEG->RGB + normalization).
void DecodePixelsInto(const std::string& raw_image, float* dst, size_t count) {
  uint32_t state = 0x9E3779B9u ^ static_cast<uint32_t>(raw_image.size());
  for (size_t i = 0; i < count; ++i) {
    state ^= static_cast<uint8_t>(raw_image[i % raw_image.size()]);
    state = state * 1664525u + 1013904223u;
    dst[i] = static_cast<float>(state >> 8) / 16777216.0f;
  }
}

}  // namespace

Result<SimTime> TextTokenize::Apply(Sample& sample) const {
  return ApplyWithArena(sample, nullptr);
}

Result<SimTime> TextTokenize::ApplyWithArena(Sample& sample, RowGroupArena* arena) const {
  size_t emitted = 0;
  if (arena != nullptr) {
    // Arena path: append into the shared row-group slab; the view lands on
    // the sample when the loader freezes the group.
    size_t begin = arena->TokenSlabSize();
    emitted = tokenizer_->EncodeInto(sample.raw_text, &arena->TokenSlab());
    arena->CommitTokens(&sample, begin);
  } else {
    sample.tokens = tokenizer_->Encode(sample.raw_text);
    emitted = sample.tokens.size();
  }
  // Keep metadata authoritative: generators size raw_text so Encode() matches
  // meta.text_tokens; enforce the contract here.
  if (sample.meta.text_tokens != static_cast<int32_t>(emitted)) {
    sample.meta.text_tokens = static_cast<int32_t>(emitted);
  }
  SampleMeta text_only = sample.meta;
  text_only.image_tokens = 0;
  text_only.modality = Modality::kText;
  return SampleTransformLatency(text_only, 1.0, params_);
}

Result<SimTime> ImageDecode::Apply(Sample& sample) const {
  return ApplyWithArena(sample, nullptr);
}

Result<SimTime> ImageDecode::ApplyWithArena(Sample& sample, RowGroupArena* arena) const {
  if (sample.meta.image_tokens == 0) {
    return SimTime{0};
  }
  if (sample.raw_image.empty()) {
    return Status::FailedPrecondition("ImageDecode on sample without raw image bytes");
  }
  if (max_patches_ > 0 && sample.meta.image_tokens > max_patches_) {
    // Decode bound: clamp the meta first so the pixel count, packing, and
    // the cost charged below all reflect only the bounded work.
    sample.meta.image_tokens = max_patches_;
  }
  size_t count = static_cast<size_t>(sample.meta.image_tokens);
  if (arena != nullptr) {
    // Arena path: decode straight into the shared pixel slab — no private
    // buffer, no copy; the view lands on the sample at group freeze.
    DecodePixelsInto(sample.raw_image, arena->AllocPixels(&sample, count), count);
  } else {
    std::vector<float> pixels(count);
    DecodePixelsInto(sample.raw_image, pixels.data(), count);
    sample.pixels = std::move(pixels);  // frozen exactly once
  }
  SampleMeta image_only = sample.meta;
  image_only.text_tokens = 0;
  return SampleTransformLatency(image_only, 1.0, params_);
}

Result<SimTime> CropToPatches::Apply(Sample& sample) const {
  if (max_patches_ <= 0) {
    return Status::InvalidArgument("max_patches must be positive");
  }
  if (sample.meta.image_tokens > max_patches_) {
    sample.meta.image_tokens = max_patches_;
    if (!sample.pixels.empty()) {
      // Views are immutable windows: cropping is an O(1) re-slice of the
      // frozen buffer, not a reallocation.
      sample.pixels = sample.pixels.Slice(0, static_cast<size_t>(max_patches_));
    }
  }
  // Cropping is a cheap memmove relative to decode: charge 1% of decode cost.
  SampleMeta image_only = sample.meta;
  image_only.text_tokens = 0;
  return SampleTransformLatency(image_only, 0.01);
}

Result<SimTime> TransformPipeline::Apply(Sample& sample, RowGroupArena* arena) const {
  SimTime total = 0;
  for (const auto& stage : stages_) {
    Result<SimTime> cost = stage->ApplyWithArena(sample, arena);
    if (!cost.ok()) {
      return cost.status();
    }
    total += cost.value();
  }
  return total;
}

TransformPipeline TransformPipeline::Default(Modality modality,
                                             std::shared_ptr<const Tokenizer> tokenizer,
                                             int32_t max_decode_patches) {
  TransformPipeline p;
  p.Add(std::make_unique<TextTokenize>(std::move(tokenizer)));
  if (modality != Modality::kText) {
    p.Add(std::make_unique<ImageDecode>(TransformCostParams(), max_decode_patches));
  }
  return p;
}

}  // namespace msd
