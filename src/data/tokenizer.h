// A real (if simple) tokenizer: whitespace-split words hashed into a fixed
// vocabulary, with sub-word fallback for long words. Used in real-mode sample
// transformation so examples deliver genuine token tensors.
#ifndef SRC_DATA_TOKENIZER_H_
#define SRC_DATA_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msd {

class Tokenizer {
 public:
  explicit Tokenizer(int32_t vocab_size = 128000) : vocab_size_(vocab_size) {}

  std::vector<int32_t> Encode(const std::string& text) const;
  // Appends the encoding of `text` to `out` (arena-slab producer path: one
  // growing slab per row group instead of one vector per row). Returns the
  // number of tokens appended.
  size_t EncodeInto(const std::string& text, std::vector<int32_t>* out) const;
  int32_t vocab_size() const { return vocab_size_; }

 private:
  int32_t HashToken(const char* data, size_t len) const;
  int32_t vocab_size_;
};

// Generates `approx_tokens` of synthetic text (deterministic from the seed)
// whose Encode() output has exactly `approx_tokens` entries.
std::string GenerateText(uint64_t seed, int32_t approx_tokens);

}  // namespace msd

#endif  // SRC_DATA_TOKENIZER_H_
