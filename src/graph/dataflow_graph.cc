#include "src/graph/dataflow_graph.h"

#include <cstdio>

namespace msd {

const char* SampleStateName(SampleState s) {
  switch (s) {
    case SampleState::kInBuffer:
      return "in_buffer";
    case SampleState::kSampled:
      return "sampled";
    case SampleState::kExcluded:
      return "excluded";
    case SampleState::kAssigned:
      return "assigned";
    case SampleState::kPlanned:
      return "planned";
  }
  return "unknown";
}

int64_t DataflowGraph::AddNode(DataflowNode node) {
  node.id = static_cast<int64_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

void DataflowGraph::AddEdge(int64_t from, int64_t to, std::string label) {
  MSD_CHECK(from >= 0 && from < static_cast<int64_t>(nodes_.size()));
  MSD_CHECK(to >= 0 && to < static_cast<int64_t>(nodes_.size()));
  edges_.push_back(DataflowEdge{from, to, std::move(label)});
}

int64_t DataflowGraph::Transition(int64_t id, SampleState state, const std::string& label) {
  DataflowNode& current = node(id);
  if (!track_lineage_) {
    current.state = state;
    return id;
  }
  DataflowNode next = current;  // copy annotations forward
  next.state = state;
  int64_t next_id = AddNode(std::move(next));
  AddEdge(id, next_id, label);
  return next_id;
}

DataflowNode& DataflowGraph::node(int64_t id) {
  MSD_CHECK(id >= 0 && id < static_cast<int64_t>(nodes_.size()));
  return nodes_[static_cast<size_t>(id)];
}

const DataflowNode& DataflowGraph::node(int64_t id) const {
  MSD_CHECK(id >= 0 && id < static_cast<int64_t>(nodes_.size()));
  return nodes_[static_cast<size_t>(id)];
}

std::vector<int64_t> DataflowGraph::Lineage(int64_t id) const {
  std::vector<int64_t> out;
  // Edge lists are short chains per sample; a reverse scan suffices.
  int64_t current = id;
  bool found = true;
  while (found) {
    found = false;
    for (auto it = edges_.rbegin(); it != edges_.rend(); ++it) {
      if (it->to == current) {
        out.push_back(it->from);
        current = it->from;
        found = true;
        break;
      }
    }
  }
  return out;
}

std::string DataflowGraph::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  char line[256];
  for (const DataflowNode& n : nodes_) {
    std::snprintf(line, sizeof(line),
                  "  n%lld [label=\"s%llu src%d %s\\ncost=%.1f bucket=%d mb=%d\"];\n",
                  static_cast<long long>(n.id), static_cast<unsigned long long>(n.meta.sample_id),
                  n.meta.source_id, SampleStateName(n.state), n.cost_load, n.bucket,
                  n.microbatch);
    out += line;
  }
  for (const DataflowEdge& e : edges_) {
    std::snprintf(line, sizeof(line), "  n%lld -> n%lld [label=\"%s\"];\n",
                  static_cast<long long>(e.from), static_cast<long long>(e.to), e.label.c_str());
    out += line;
  }
  out += "}\n";
  return out;
}

}  // namespace msd
