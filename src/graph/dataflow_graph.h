// DataflowGraph: the state-tracking DAG backing DGraph (Sec. 4.1).
//
// Each node is "a training sample in a specific processing state"; directed
// acyclic edges encode transformations or logical dependencies. New states
// append new nodes linked by labelled edges, so full lineage is queryable and
// exportable to DOT ("orchestration transparency").
#ifndef SRC_GRAPH_DATAFLOW_GRAPH_H_
#define SRC_GRAPH_DATAFLOW_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/sample.h"

namespace msd {

enum class SampleState : uint8_t {
  kInBuffer = 0,  // resident in a Source Loader read buffer
  kSampled,       // selected by mix() for this step
  kExcluded,      // not selected by mix()
  kAssigned,      // bound to (bucket, microbatch) by balance()
  kPlanned,       // emitted into a LoadingPlan
};

const char* SampleStateName(SampleState s);

struct DataflowNode {
  int64_t id = -1;
  SampleMeta meta;
  int32_t loader_id = -1;
  SampleState state = SampleState::kInBuffer;
  // Orchestration annotations (filled by cost/balance/plan).
  double cost_load = 0.0;
  double cost_mem = 0.0;
  int32_t bucket = -1;
  int32_t microbatch = -1;
};

struct DataflowEdge {
  int64_t from = -1;
  int64_t to = -1;
  std::string label;  // "mix", "balance", "plan", or a transform name
};

class DataflowGraph {
 public:
  // When lineage tracking is off, state transitions mutate nodes in place
  // (cheap mode for cluster-scale plans); when on, transitions append nodes.
  explicit DataflowGraph(bool track_lineage = false) : track_lineage_(track_lineage) {}

  int64_t AddNode(DataflowNode node);
  void AddEdge(int64_t from, int64_t to, std::string label);

  // Moves `id` to `state` via an edge labelled `label`; returns the id of the
  // node now carrying the sample (same id unless lineage tracking is on).
  int64_t Transition(int64_t id, SampleState state, const std::string& label);

  DataflowNode& node(int64_t id);
  const DataflowNode& node(int64_t id) const;
  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<DataflowNode>& nodes() const { return nodes_; }
  const std::vector<DataflowEdge>& edges() const { return edges_; }
  bool track_lineage() const { return track_lineage_; }

  // All ancestors of `id` following edges backwards (nearest first).
  std::vector<int64_t> Lineage(int64_t id) const;

  // Graphviz rendering of nodes + labelled edges.
  std::string ToDot(const std::string& graph_name = "dgraph") const;

 private:
  bool track_lineage_;
  std::vector<DataflowNode> nodes_;
  std::vector<DataflowEdge> edges_;
};

}  // namespace msd

#endif  // SRC_GRAPH_DATAFLOW_GRAPH_H_
