#include "src/constructor/reference_assembly.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"
#include "src/data/transform.h"

namespace msd {

ReferenceDataPlane::ReferenceDataPlane(DataConstructorConfig config,
                                       const ClientPlaceTree* tree)
    : config_(config), tree_(tree) {
  MSD_CHECK(tree_ != nullptr);
}

std::vector<int32_t> ReferenceDataPlane::OwnedBuckets(const LoadingPlan& plan) const {
  std::vector<int32_t> buckets;
  if (plan.group_size != 1) {
    for (int32_t b = 0; b < plan.num_buckets; ++b) {
      if (b % tree_->spec().dp == config_.constructor_id) {
        buckets.push_back(b);
      }
    }
    return buckets;
  }
  for (int32_t b = 0; b < plan.num_buckets; ++b) {
    if (tree_->DpOfBucket(plan.axis, b) == config_.constructor_id) {
      buckets.push_back(b);
    }
  }
  return buckets;
}

Status ReferenceDataPlane::AssembleBucket(const LoadingPlan& plan,
                                          const std::map<uint64_t, Sample>& samples_by_id,
                                          int32_t bucket, std::vector<Microbatch>* out) const {
  out->clear();
  out->resize(static_cast<size_t>(plan.num_microbatches));
  for (int32_t mb = 0; mb < plan.num_microbatches; ++mb) {
    // Scalar plane: full assignment rescan per (bucket, microbatch).
    std::vector<SampleMeta> metas;
    for (const SliceAssignment& a : plan.assignments) {
      if (a.bucket != bucket || a.microbatch != mb) {
        continue;
      }
      auto it = samples_by_id.find(a.sample_id);
      if (it == samples_by_id.end()) {
        return Status::DataLoss("sample " + std::to_string(a.sample_id) +
                                " missing from slices (partial yield?)");
      }
      metas.push_back(it->second.meta);
    }
    Microbatch& micro = (*out)[static_cast<size_t>(mb)];
    micro.microbatch_index = mb;
    // Same multi-scale pack bound as the zero-copy plane (byte-identity).
    const int32_t pack_len = plan.pack_max_seq_len > 0
                                 ? std::min(plan.pack_max_seq_len, config_.max_seq_len)
                                 : config_.max_seq_len;
    micro.sequences = PackSequences(metas, pack_len);
    int32_t align = 2 * tree_->spec().cp;
    int32_t max_len = 0;
    for (const PackedSequence& s : micro.sequences) {
      max_len = std::max(max_len, s.total_tokens);
    }
    int32_t padded = ((max_len + align - 1) / align) * align;
    for (PackedSequence& seq : micro.sequences) {
      // Scalar plane: samples are value-copied out of the map per sequence.
      std::vector<Sample> seq_samples;
      seq_samples.reserve(seq.sample_ids.size());
      for (uint64_t id : seq.sample_ids) {
        seq_samples.push_back(samples_by_id.at(id));
      }
      std::vector<int32_t> tokens;
      tokens.reserve(static_cast<size_t>(seq.total_tokens));
      seq.pixel_segments.clear();
      for (size_t i = 0; i < seq_samples.size(); ++i) {
        if (seq_samples[i].meta.sample_id != seq.sample_ids[i]) {
          return Status::InvalidArgument("sample order mismatch at segment " +
                                         std::to_string(i));
        }
        int32_t want = seq.segment_lengths[i];
        int32_t emitted = 0;
        for (int32_t t : seq_samples[i].tokens) {
          if (emitted >= want) {
            break;
          }
          tokens.push_back(t);
          ++emitted;
        }
        int32_t patches = want - emitted;
        while (emitted < want) {
          tokens.push_back(kImagePatchToken);
          ++emitted;
        }
        // Scalar plane: the segment's patch pixels are value-copied into a
        // fresh owned buffer (the pre-zero-copy cost structure).
        const PixelView& pixels = seq_samples[i].pixels;
        size_t patch_count =
            std::min(static_cast<size_t>(std::max(patches, 0)), pixels.size());
        seq.pixel_segments.push_back(
            std::vector<float>(pixels.begin(), pixels.begin() + patch_count));
      }
      std::vector<int32_t> positions = RopePositions(seq);
      tokens.resize(static_cast<size_t>(padded), kPadToken);
      positions.resize(static_cast<size_t>(padded), 0);
      seq.tokens = std::move(tokens);
      seq.position_ids = std::move(positions);
      seq.padded_to = padded;
    }
  }
  return Status::Ok();
}

Status ReferenceDataPlane::BuildStep(const LoadingPlan& plan,
                                     const std::vector<SampleSlice>& slices) {
  // Scalar plane: every sample is value-copied into the per-step map.
  std::map<uint64_t, Sample> samples_by_id;
  ImageDecode deferred_decode(TransformCostParams(), config_.max_decode_patches);
  for (const SampleSlice& slice : slices) {
    if (!slice.end_of_stream) {
      return Status::DataLoss("slice from loader " + std::to_string(slice.loader_id) +
                              " lacks end-of-stream marker");
    }
    for (const std::shared_ptr<Sample>& s : slice.samples) {
      Sample copy = *s;
      if (config_.decode_deferred_images && copy.meta.image_tokens > 0 &&
          copy.pixels.empty()) {
        Result<SimTime> decoded = deferred_decode.Apply(copy);
        if (!decoded.ok()) {
          return decoded.status();
        }
      }
      samples_by_id.emplace(copy.meta.sample_id, std::move(copy));
    }
  }
  StepData data;
  data.plan = plan;
  data.buckets = OwnedBuckets(plan);
  data.microbatches.resize(data.buckets.size());
  for (size_t i = 0; i < data.buckets.size(); ++i) {
    MSD_RETURN_IF_ERROR(
        AssembleBucket(plan, samples_by_id, data.buckets[i], &data.microbatches[i]));
  }
  int64_t step = plan.step;
  steps_.erase(step);
  steps_.emplace(step, std::move(data));
  return Status::Ok();
}

RankBatch ReferenceDataPlane::MakeRankView(const StepData& data, int32_t rank) const {
  RankBatch batch;
  batch.rank = rank;
  batch.step = data.plan.step;
  RankCoord coord = CoordOfRank(tree_->spec(), rank);
  batch.metadata_only = coord.pp > 0;

  int32_t bucket = tree_->BucketOfRank(data.plan.axis, rank, data.plan.group_size);
  auto it = std::find(data.buckets.begin(), data.buckets.end(), bucket);
  if (it == data.buckets.end()) {
    return batch;
  }
  const std::vector<Microbatch>& built =
      data.microbatches[static_cast<size_t>(it - data.buckets.begin())];

  for (const Microbatch& mb : built) {
    Microbatch view;
    view.microbatch_index = mb.microbatch_index;
    for (const PackedSequence& seq : mb.sequences) {
      PackedSequence out;
      out.sample_ids = seq.sample_ids;
      out.segment_lengths = seq.segment_lengths;
      out.total_tokens = seq.total_tokens;
      out.padded_to = seq.padded_to;
      if (!batch.metadata_only) {
        // Scalar plane: fresh slice copies per requesting rank.
        std::vector<int32_t> tokens;
        std::vector<int32_t> positions;
        for (auto [begin, end] : CpSliceRanges(seq.padded_to, tree_->spec().cp, coord.cp,
                                               config_.cp_split)) {
          tokens.insert(tokens.end(), seq.tokens.begin() + begin, seq.tokens.begin() + end);
          positions.insert(positions.end(), seq.position_ids.begin() + begin,
                           seq.position_ids.begin() + end);
        }
        out.tokens = std::move(tokens);
        out.position_ids = std::move(positions);
        // Scalar plane: pixel payloads are value-copied again per requesting
        // rank (the zero-copy plane serves aliases of one frozen buffer).
        // Copy via the raw range so the traffic is accounted once (as the
        // freeze), mirroring the token path above.
        out.pixel_segments.reserve(seq.pixel_segments.size());
        for (const PixelView& segment : seq.pixel_segments) {
          out.pixel_segments.push_back(std::vector<float>(segment.begin(), segment.end()));
        }
      }
      batch.payload_bytes += static_cast<int64_t>(
          out.tokens.size() * sizeof(int32_t) + out.position_ids.size() * sizeof(int32_t) +
          out.PixelCount() * static_cast<int64_t>(sizeof(float)));
      view.sequences.push_back(std::move(out));
    }
    batch.microbatches.push_back(std::move(view));
  }
  return batch;
}

Result<RankBatch> ReferenceDataPlane::GetBatch(int32_t rank, int64_t step) const {
  auto it = steps_.find(step);
  if (it == steps_.end()) {
    return Status::NotFound("step " + std::to_string(step) + " not built on reference plane");
  }
  if (rank < 0 || rank >= tree_->spec().WorldSize()) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world");
  }
  return MakeRankView(it->second, rank);
}

}  // namespace msd
