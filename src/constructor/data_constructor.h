// DataConstructor: the per-DP-group aggregation actor (Sec. 3).
//
// It ingests sample slices popped from Source Loaders, assembles microbatches
// (packing, padding, RoPE), and applies parallelism transformations so each
// trainer rank fetches exactly the view it needs:
//  - CP ranks receive zig-zag (or contiguous) sequence slices of shared batches,
//  - PP stages > 0 receive metadata-only views,
//  - TP ranks > 0 are excluded entirely when broadcast_at(TP) is declared.
// This sharing is what removes the per-rank loader redundancy of Fig. 6.
#ifndef SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_
#define SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/actor/actor.h"
#include "src/data/microbatch.h"
#include "src/loader/source_loader.h"
#include "src/mesh/client_place_tree.h"
#include "src/plan/dgraph.h"
#include "src/storage/memory_model.h"

namespace msd {

enum class CpSplitMode {
  kContiguous = 0,  // rank i takes slice i of cp
  kZigZag,          // rank i takes slices i and 2cp-1-i of 2cp (causal balance)
};

struct DataConstructorConfig {
  int32_t constructor_id = 0;  // == DP group index it serves
  int32_t max_seq_len = 4096;
  CpSplitMode cp_split = CpSplitMode::kZigZag;
  MemoryAccountant::NodeId node = 0;
  // Steps kept resident for late fetchers before eviction.
  int64_t resident_steps = 2;
  // Transformation reordering (Sec. 6.2): decode images that loaders shipped
  // compressed (SourceLoaderConfig::defer_image_decode).
  bool decode_deferred_images = true;
};

// The batch view one rank fetches for one step.
struct RankBatch {
  int32_t rank = -1;
  int64_t step = -1;
  bool metadata_only = false;  // PP stages > 0
  std::vector<Microbatch> microbatches;
  int64_t payload_bytes = 0;
};

class DataConstructor : public Actor {
 public:
  DataConstructor(DataConstructorConfig config, const ClientPlaceTree* tree,
                  MemoryAccountant* accountant);
  ~DataConstructor() override;

  // Assembles this constructor's share of `plan` from the given slices.
  // Slices must cover every sample the plan assigns to this constructor's
  // buckets; samples for other constructors' buckets are ignored.
  Status BuildStep(const LoadingPlan& plan, std::vector<SampleSlice> slices);

  // Serves the parallelism-transformed view for `rank` at `step`.
  Result<RankBatch> GetBatch(int32_t rank, int64_t step);

  // Buckets of `plan` this constructor is responsible for.
  std::vector<int32_t> OwnedBuckets(const LoadingPlan& plan) const;

  // Elastic resharding (Sec. 6.1): adopt a new topology; resident steps are
  // re-targeted to the new mesh on their next fetch.
  void Reshard(const ClientPlaceTree* tree);

  const DataConstructorConfig& config() const { return config_; }
  int64_t steps_built() const { return steps_built_; }
  int64_t batches_served() const { return batches_served_; }

 private:
  struct StepData {
    LoadingPlan plan;
    // microbatches[bucket_pos][mb] for OwnedBuckets order.
    std::vector<int32_t> buckets;
    std::vector<std::vector<Microbatch>> microbatches;
    MemCharge charge;
  };

  Status AssembleBucket(const LoadingPlan& plan,
                        const std::map<uint64_t, Sample>& samples_by_id, int32_t bucket,
                        std::vector<Microbatch>* out) const;
  RankBatch MakeRankView(const StepData& data, int32_t rank) const;
  void EvictOldSteps(int64_t current_step);

  DataConstructorConfig config_;
  const ClientPlaceTree* tree_;
  MemoryAccountant* accountant_;
  std::map<int64_t, StepData> steps_;
  int64_t steps_built_ = 0;
  int64_t batches_served_ = 0;
};

// Splits a padded sequence's token range across cp ranks. Returns the token
// index ranges (pairs of [begin, end)) owned by `cp_rank`.
std::vector<std::pair<int32_t, int32_t>> CpSliceRanges(int32_t padded_len, int32_t cp,
                                                       int32_t cp_rank, CpSplitMode mode);

}  // namespace msd

#endif  // SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_
