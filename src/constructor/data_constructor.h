// DataConstructor: the per-DP-group aggregation actor (Sec. 3).
//
// It ingests sample slices popped from Source Loaders, assembles microbatches
// (packing, padding, RoPE), and applies parallelism transformations so each
// trainer rank fetches exactly the view it needs:
//  - CP ranks receive zig-zag (or contiguous) sequence slices of shared batches,
//  - PP stages > 0 receive metadata-only views,
//  - TP ranks > 0 are excluded entirely when broadcast_at(TP) is declared.
// This sharing is what removes the per-rank loader redundancy of Fig. 6.
//
// Zero-copy data plane (ownership model):
//  - BuildStep takes the loaders' `shared_ptr<Sample>`s, indexes them by id,
//    and materializes each padded sequence payload exactly once into frozen
//    TokenBuffers (see token_buffer.h). No Sample is copied on this path.
//  - Plan assembly groups `plan.assignments` by (bucket, microbatch) in one
//    pass; per-bin assembly then walks only its own assignment slice instead
//    of rescanning the whole plan per bin.
//  - GetBatch serves TokenView-carrying RankBatches. The CP-sliced view of a
//    (bucket, cp-coordinate) pair is computed on first fetch and cached in
//    StepData, so all ranks sharing that coordinate (TP replicas, and every
//    later fetch) alias the same storage. Contiguous slices are O(1) windows
//    into the canonical buffer; only zig-zag CP slices (two disjoint chunks)
//    are materialized, once per coordinate rather than once per rank.
//  - PP stages > 0 get the cached metadata-only variant: sequence shapes and
//    ids, zero payload bytes.
//
// Step lifetime under the streaming API: the prefetch pipeline builds steps
// ahead of consumption and retires them by refcount — once every rank of the
// mesh has fetched a step, ReleaseStep drops its StepData eagerly. The
// resident_steps window remains as the backstop for consumers that never
// complete a step (the deprecated lockstep shim, partial fetchers).
//
// Thread-safety: all public methods are safe to call concurrently. In the
// actor deployment calls are already serialized through the mailbox; the
// internal mutex additionally covers direct multi-threaded use (benches,
// tests) so pipelined GetBatch can never race BuildStep/Reshard.
#ifndef SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_
#define SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/actor/actor.h"
#include "src/data/microbatch.h"
#include "src/loader/source_loader.h"
#include "src/mesh/client_place_tree.h"
#include "src/plan/dgraph.h"
#include "src/storage/memory_model.h"

namespace msd {

enum class CpSplitMode {
  kContiguous = 0,  // rank i takes slice i of cp
  kZigZag,          // rank i takes slices i and 2cp-1-i of 2cp (causal balance)
};

struct DataConstructorConfig {
  int32_t constructor_id = 0;  // == DP group index it serves
  int32_t max_seq_len = 4096;
  CpSplitMode cp_split = CpSplitMode::kZigZag;
  MemoryAccountant::NodeId node = 0;
  // Steps kept resident for late fetchers before eviction.
  int64_t resident_steps = 2;
  // Transformation reordering (Sec. 6.2): decode images that loaders shipped
  // compressed (SourceLoaderConfig::defer_image_decode).
  bool decode_deferred_images = true;
  // Decode bound for deferred decode; must equal the loaders'
  // SourceLoaderConfig::max_decode_patches (0 = unbounded).
  int32_t max_decode_patches = 0;
};

// The batch view one rank fetches for one step. Token payloads inside the
// microbatches are views aliasing the constructor's frozen step buffers;
// fetching is metadata-cost only.
struct RankBatch {
  int32_t rank = -1;
  int64_t step = -1;
  bool metadata_only = false;  // PP stages > 0
  std::vector<Microbatch> microbatches;
  int64_t payload_bytes = 0;
};

class DataConstructor : public Actor {
 public:
  DataConstructor(DataConstructorConfig config, const ClientPlaceTree* tree,
                  MemoryAccountant* accountant);
  ~DataConstructor() override;

  // Assembles this constructor's share of `plan` from the given slices.
  // Slices must cover every sample the plan assigns to this constructor's
  // buckets; samples for other constructors' buckets are ignored.
  Status BuildStep(const LoadingPlan& plan, std::vector<SampleSlice> slices);

  // Serves the parallelism-transformed view for `rank` at `step`.
  Result<RankBatch> GetBatch(int32_t rank, int64_t step);

  // Buckets of `plan` this constructor is responsible for.
  std::vector<int32_t> OwnedBuckets(const LoadingPlan& plan) const;

  // Elastic resharding (Sec. 6.1): adopt a new topology; resident steps are
  // re-targeted to the new mesh on their next fetch.
  void Reshard(const ClientPlaceTree* tree);

  // Streaming retirement: drops `step`'s resident data. Called by the
  // prefetch pipeline once every rank has fetched its view of the step.
  void ReleaseStep(int64_t step);

  const DataConstructorConfig& config() const { return config_; }
  int64_t steps_built() const { return steps_built_.load(std::memory_order_relaxed); }
  int64_t batches_served() const { return batches_served_.load(std::memory_order_relaxed); }
  // Steps whose StepData is currently resident (tests assert eager release).
  std::vector<int64_t> ResidentSteps() const;

 private:
  using SampleMap = std::unordered_map<uint64_t, std::shared_ptr<const Sample>>;
  // Assignments of one owned bucket grouped per microbatch, in plan order.
  using BucketBins = std::vector<std::vector<const SliceAssignment*>>;

  // One cached parallelism-transformed view of a bucket: the microbatch list
  // as served to every rank at a given CP coordinate (or metadata-only).
  struct CachedView {
    std::vector<Microbatch> microbatches;
    int64_t payload_bytes = 0;
  };

  struct StepData {
    LoadingPlan plan;
    // microbatches[bucket_pos][mb] for OwnedBuckets order (canonical padded
    // sequences; every served view aliases these buffers).
    std::vector<int32_t> buckets;
    std::vector<std::vector<Microbatch>> microbatches;
    // Keyed by (bucket_pos, cp coordinate); cp == -1 is the metadata-only
    // variant for pp > 0 ranks. Shared so repeat fetches are refcount bumps.
    std::map<std::pair<size_t, int32_t>, std::shared_ptr<const CachedView>> views;
    MemCharge charge;
    // One extra charge per cached view that had to materialize disjoint CP
    // chunks (released with the step, like `charge`).
    std::vector<MemCharge> view_charges;
  };

  std::vector<int32_t> OwnedBucketsLocked(const LoadingPlan& plan) const;
  // `pack_len` is the step's effective pack length: the plan's multi-scale
  // pick (pack_max_seq_len) clamped to config max_seq_len, or the config
  // value when the plan carries none.
  Status AssembleBucket(const SampleMap& samples_by_id, const BucketBins& bins,
                        int32_t pack_len, std::vector<Microbatch>* out) const;
  RankBatch MakeRankView(StepData& data, int32_t rank) const;
  const CachedView& SliceViewFor(StepData& data, size_t bucket_pos, int32_t cp_coord) const;
  void EvictOldSteps(int64_t current_step);

  DataConstructorConfig config_;
  // Guards tree_ and steps_ for direct (non-actor) multi-threaded use.
  mutable std::mutex mu_;
  const ClientPlaceTree* tree_;
  MemoryAccountant* accountant_;
  std::map<int64_t, StepData> steps_;
  std::atomic<int64_t> steps_built_{0};
  std::atomic<int64_t> batches_served_{0};
};

// Splits a padded sequence's token range across cp ranks. Returns the token
// index ranges (pairs of [begin, end)) owned by `cp_rank`.
std::vector<std::pair<int32_t, int32_t>> CpSliceRanges(int32_t padded_len, int32_t cp,
                                                       int32_t cp_rank, CpSplitMode mode);

}  // namespace msd

#endif  // SRC_CONSTRUCTOR_DATA_CONSTRUCTOR_H_
