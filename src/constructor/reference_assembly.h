// ReferenceDataPlane: a frozen copy of the pre-zero-copy constructor data
// plane, kept on purpose as (a) the correctness oracle for the golden
// equivalence tests — DataConstructor must serve byte-identical RankBatches —
// and (b) the baseline that bench_dataplane_throughput measures the zero-copy
// plane against.
//
// It reproduces the scalar plane's cost structure faithfully:
//   - every popped Sample is value-copied into the per-step sample map,
//   - per-sequence assembly value-copies the samples again before filling,
//   - AssembleBucket rescans the full assignment list once per
//     (bucket, microbatch) pair,
//   - every GetBatch re-runs CP slicing and materializes fresh token/position
//     copies for the requesting rank.
// Do not "optimize" this class; its inefficiency is its specification.
#ifndef SRC_CONSTRUCTOR_REFERENCE_ASSEMBLY_H_
#define SRC_CONSTRUCTOR_REFERENCE_ASSEMBLY_H_

#include <map>
#include <vector>

#include "src/constructor/data_constructor.h"

namespace msd {

class ReferenceDataPlane {
 public:
  ReferenceDataPlane(DataConstructorConfig config, const ClientPlaceTree* tree);

  // Reads (and deep-copies) the slices; the caller keeps ownership.
  Status BuildStep(const LoadingPlan& plan, const std::vector<SampleSlice>& slices);

  Result<RankBatch> GetBatch(int32_t rank, int64_t step) const;

  std::vector<int32_t> OwnedBuckets(const LoadingPlan& plan) const;

 private:
  struct StepData {
    LoadingPlan plan;
    std::vector<int32_t> buckets;
    std::vector<std::vector<Microbatch>> microbatches;
  };

  Status AssembleBucket(const LoadingPlan& plan,
                        const std::map<uint64_t, Sample>& samples_by_id, int32_t bucket,
                        std::vector<Microbatch>* out) const;
  RankBatch MakeRankView(const StepData& data, int32_t rank) const;

  DataConstructorConfig config_;
  const ClientPlaceTree* tree_;
  std::map<int64_t, StepData> steps_;
};

}  // namespace msd

#endif  // SRC_CONSTRUCTOR_REFERENCE_ASSEMBLY_H_
