#include "src/constructor/data_constructor.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/data/transform.h"

namespace msd {

std::vector<std::pair<int32_t, int32_t>> CpSliceRanges(int32_t padded_len, int32_t cp,
                                                       int32_t cp_rank, CpSplitMode mode) {
  MSD_CHECK(cp >= 1 && cp_rank >= 0 && cp_rank < cp);
  if (cp == 1) {
    return {{0, padded_len}};
  }
  if (mode == CpSplitMode::kContiguous) {
    int32_t chunk = (padded_len + cp - 1) / cp;
    int32_t begin = std::min(cp_rank * chunk, padded_len);
    int32_t end = std::min(begin + chunk, padded_len);
    return {{begin, end}};
  }
  // Zig-zag: split into 2*cp chunks; rank i owns chunks i and 2cp-1-i so every
  // rank sees a balanced share of early (cheap) and late (expensive) causal
  // positions.
  int32_t pieces = 2 * cp;
  int32_t chunk = (padded_len + pieces - 1) / pieces;
  auto piece_range = [&](int32_t p) -> std::pair<int32_t, int32_t> {
    int32_t begin = std::min(p * chunk, padded_len);
    int32_t end = std::min(begin + chunk, padded_len);
    return {begin, end};
  };
  return {piece_range(cp_rank), piece_range(pieces - 1 - cp_rank)};
}

DataConstructor::DataConstructor(DataConstructorConfig config, const ClientPlaceTree* tree,
                                 MemoryAccountant* accountant)
    : Actor("data_constructor/" + std::to_string(config.constructor_id)),
      config_(config),
      tree_(tree),
      accountant_(accountant) {
  MSD_CHECK(tree_ != nullptr);
}

DataConstructor::~DataConstructor() = default;

std::vector<int32_t> DataConstructor::OwnedBuckets(const LoadingPlan& plan) const {
  std::vector<int32_t> buckets;
  if (plan.group_size != 1) {
    // Grouped buckets span DP groups; ownership falls back to round-robin.
    for (int32_t b = 0; b < plan.num_buckets; ++b) {
      if (b % tree_->spec().dp == config_.constructor_id) {
        buckets.push_back(b);
      }
    }
    return buckets;
  }
  for (int32_t b = 0; b < plan.num_buckets; ++b) {
    if (tree_->DpOfBucket(plan.axis, b) == config_.constructor_id) {
      buckets.push_back(b);
    }
  }
  return buckets;
}

Status DataConstructor::AssembleBucket(const LoadingPlan& plan,
                                       const std::map<uint64_t, Sample>& samples_by_id,
                                       int32_t bucket, std::vector<Microbatch>* out) const {
  out->clear();
  out->resize(static_cast<size_t>(plan.num_microbatches));
  for (int32_t mb = 0; mb < plan.num_microbatches; ++mb) {
    std::vector<SampleMeta> metas;
    for (const SliceAssignment& a : plan.assignments) {
      if (a.bucket != bucket || a.microbatch != mb) {
        continue;
      }
      auto it = samples_by_id.find(a.sample_id);
      if (it == samples_by_id.end()) {
        return Status::DataLoss("sample " + std::to_string(a.sample_id) +
                                " missing from slices (partial yield?)");
      }
      metas.push_back(it->second.meta);
    }
    Microbatch& micro = (*out)[static_cast<size_t>(mb)];
    micro.microbatch_index = mb;
    micro.sequences = PackSequences(metas, config_.max_seq_len);
    for (PackedSequence& seq : micro.sequences) {
      std::vector<Sample> seq_samples;
      seq_samples.reserve(seq.sample_ids.size());
      for (uint64_t id : seq.sample_ids) {
        seq_samples.push_back(samples_by_id.at(id));
      }
      MSD_RETURN_IF_ERROR(FillPackedTokens(seq, seq_samples));
    }
    // Pad to a multiple of 2*cp so CP slicing is exact.
    int32_t align = 2 * tree_->spec().cp;
    int32_t max_len = 0;
    for (const PackedSequence& s : micro.sequences) {
      max_len = std::max(max_len, s.total_tokens);
    }
    int32_t padded = ((max_len + align - 1) / align) * align;
    PadMicrobatch(micro, padded);
  }
  return Status::Ok();
}

Status DataConstructor::BuildStep(const LoadingPlan& plan, std::vector<SampleSlice> slices) {
  std::map<uint64_t, Sample> samples_by_id;
  ImageDecode deferred_decode;
  for (SampleSlice& slice : slices) {
    if (!slice.end_of_stream) {
      return Status::DataLoss("slice from loader " + std::to_string(slice.loader_id) +
                              " lacks end-of-stream marker");
    }
    for (Sample& s : slice.samples) {
      if (config_.decode_deferred_images && s.meta.image_tokens > 0 && s.pixels.empty()) {
        // Transformation reordering: the loader shipped compressed bytes.
        Result<SimTime> decoded = deferred_decode.Apply(s);
        if (!decoded.ok()) {
          return decoded.status();
        }
      }
      samples_by_id.emplace(s.meta.sample_id, std::move(s));
    }
  }
  StepData data;
  data.plan = plan;
  data.buckets = OwnedBuckets(plan);
  data.microbatches.resize(data.buckets.size());
  int64_t payload = 0;
  for (size_t i = 0; i < data.buckets.size(); ++i) {
    MSD_RETURN_IF_ERROR(
        AssembleBucket(plan, samples_by_id, data.buckets[i], &data.microbatches[i]));
    for (const Microbatch& mb : data.microbatches[i]) {
      for (const PackedSequence& seq : mb.sequences) {
        payload += static_cast<int64_t>(seq.tokens.size() * sizeof(int32_t) +
                                        seq.position_ids.size() * sizeof(int32_t));
      }
    }
  }
  data.charge = MemCharge(accountant_, config_.node, MemCategory::kBatchBuffer, payload);
  int64_t step = plan.step;
  steps_.erase(step);
  steps_.emplace(step, std::move(data));
  ++steps_built_;
  EvictOldSteps(step);
  return Status::Ok();
}

RankBatch DataConstructor::MakeRankView(const StepData& data, int32_t rank) const {
  RankBatch batch;
  batch.rank = rank;
  batch.step = data.plan.step;
  RankCoord coord = CoordOfRank(tree_->spec(), rank);
  batch.metadata_only = coord.pp > 0;

  int32_t bucket = tree_->BucketOfRank(data.plan.axis, rank, data.plan.group_size);
  auto it = std::find(data.buckets.begin(), data.buckets.end(), bucket);
  if (it == data.buckets.end()) {
    return batch;  // rank's bucket not owned here; empty view
  }
  const std::vector<Microbatch>& built =
      data.microbatches[static_cast<size_t>(it - data.buckets.begin())];

  for (const Microbatch& mb : built) {
    Microbatch view;
    view.microbatch_index = mb.microbatch_index;
    for (const PackedSequence& seq : mb.sequences) {
      PackedSequence out;
      out.sample_ids = seq.sample_ids;
      out.segment_lengths = seq.segment_lengths;
      out.total_tokens = seq.total_tokens;
      out.padded_to = seq.padded_to;
      if (!batch.metadata_only) {
        for (auto [begin, end] : CpSliceRanges(seq.padded_to, tree_->spec().cp, coord.cp,
                                               config_.cp_split)) {
          out.tokens.insert(out.tokens.end(), seq.tokens.begin() + begin,
                            seq.tokens.begin() + end);
          out.position_ids.insert(out.position_ids.end(), seq.position_ids.begin() + begin,
                                  seq.position_ids.begin() + end);
        }
      }
      batch.payload_bytes += static_cast<int64_t>(
          out.tokens.size() * sizeof(int32_t) + out.position_ids.size() * sizeof(int32_t));
      view.sequences.push_back(std::move(out));
    }
    batch.microbatches.push_back(std::move(view));
  }
  return batch;
}

Result<RankBatch> DataConstructor::GetBatch(int32_t rank, int64_t step) {
  auto it = steps_.find(step);
  if (it == steps_.end()) {
    return Status::NotFound("step " + std::to_string(step) + " not built on constructor " +
                            std::to_string(config_.constructor_id));
  }
  if (rank < 0 || rank >= tree_->spec().WorldSize()) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world");
  }
  ++batches_served_;
  return MakeRankView(it->second, rank);
}

void DataConstructor::Reshard(const ClientPlaceTree* tree) {
  MSD_CHECK(tree != nullptr);
  tree_ = tree;
  // Resident data built for the old mesh is dropped; the next BuildStep uses
  // the new topology (the paper's "fast resharding of resident data" re-keys
  // partitions, which for token-sliced views is equivalent to a rebuild).
  steps_.clear();
}

void DataConstructor::EvictOldSteps(int64_t current_step) {
  while (!steps_.empty() && steps_.begin()->first <= current_step - config_.resident_steps) {
    steps_.erase(steps_.begin());
  }
}

}  // namespace msd
