#include "src/constructor/data_constructor.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/data/transform.h"

namespace msd {

std::vector<std::pair<int32_t, int32_t>> CpSliceRanges(int32_t padded_len, int32_t cp,
                                                       int32_t cp_rank, CpSplitMode mode) {
  MSD_CHECK(cp >= 1 && cp_rank >= 0 && cp_rank < cp);
  if (cp == 1) {
    return {{0, padded_len}};
  }
  if (mode == CpSplitMode::kContiguous) {
    int32_t chunk = (padded_len + cp - 1) / cp;
    int32_t begin = std::min(cp_rank * chunk, padded_len);
    int32_t end = std::min(begin + chunk, padded_len);
    return {{begin, end}};
  }
  // Zig-zag: split into 2*cp chunks; rank i owns chunks i and 2cp-1-i so every
  // rank sees a balanced share of early (cheap) and late (expensive) causal
  // positions.
  int32_t pieces = 2 * cp;
  int32_t chunk = (padded_len + pieces - 1) / pieces;
  auto piece_range = [&](int32_t p) -> std::pair<int32_t, int32_t> {
    int32_t begin = std::min(p * chunk, padded_len);
    int32_t end = std::min(begin + chunk, padded_len);
    return {begin, end};
  };
  return {piece_range(cp_rank), piece_range(pieces - 1 - cp_rank)};
}

DataConstructor::DataConstructor(DataConstructorConfig config, const ClientPlaceTree* tree,
                                 MemoryAccountant* accountant)
    : Actor("data_constructor/" + std::to_string(config.constructor_id)),
      config_(config),
      tree_(tree),
      accountant_(accountant) {
  MSD_CHECK(tree_ != nullptr);
}

DataConstructor::~DataConstructor() = default;

std::vector<int32_t> DataConstructor::OwnedBuckets(const LoadingPlan& plan) const {
  std::lock_guard<std::mutex> lock(mu_);
  return OwnedBucketsLocked(plan);
}

std::vector<int32_t> DataConstructor::OwnedBucketsLocked(const LoadingPlan& plan) const {
  std::vector<int32_t> buckets;
  if (plan.group_size != 1) {
    // Grouped buckets span DP groups; ownership falls back to round-robin.
    for (int32_t b = 0; b < plan.num_buckets; ++b) {
      if (b % tree_->spec().dp == config_.constructor_id) {
        buckets.push_back(b);
      }
    }
    return buckets;
  }
  for (int32_t b = 0; b < plan.num_buckets; ++b) {
    if (tree_->DpOfBucket(plan.axis, b) == config_.constructor_id) {
      buckets.push_back(b);
    }
  }
  return buckets;
}

Status DataConstructor::AssembleBucket(const SampleMap& samples_by_id, const BucketBins& bins,
                                       int32_t pack_len, std::vector<Microbatch>* out) const {
  out->clear();
  out->resize(bins.size());
  for (size_t mb = 0; mb < bins.size(); ++mb) {
    std::vector<SampleMeta> metas;
    metas.reserve(bins[mb].size());
    for (const SliceAssignment* a : bins[mb]) {
      auto it = samples_by_id.find(a->sample_id);
      if (it == samples_by_id.end()) {
        return Status::DataLoss("sample " + std::to_string(a->sample_id) +
                                " missing from slices (partial yield?)");
      }
      metas.push_back(it->second->meta);
    }
    Microbatch& micro = (*out)[mb];
    micro.microbatch_index = static_cast<int32_t>(mb);
    micro.sequences = PackSequences(metas, pack_len);
    // Pad to a multiple of 2*cp so CP slicing is exact. Packed lengths are
    // metadata, so the padded width is known before any payload exists and
    // each sequence is materialized exactly once, already padded.
    int32_t align = 2 * tree_->spec().cp;
    int32_t max_len = 0;
    for (const PackedSequence& s : micro.sequences) {
      max_len = std::max(max_len, s.total_tokens);
    }
    int32_t padded = ((max_len + align - 1) / align) * align;
    std::vector<const Sample*> seq_samples;
    for (PackedSequence& seq : micro.sequences) {
      seq_samples.clear();
      seq_samples.reserve(seq.sample_ids.size());
      for (uint64_t id : seq.sample_ids) {
        seq_samples.push_back(samples_by_id.at(id).get());
      }
      MSD_RETURN_IF_ERROR(FillPackedTokens(seq, seq_samples, padded));
    }
  }
  return Status::Ok();
}

Status DataConstructor::BuildStep(const LoadingPlan& plan, std::vector<SampleSlice> slices) {
  std::lock_guard<std::mutex> lock(mu_);
  SampleMap samples_by_id;
  ImageDecode deferred_decode(TransformCostParams(), config_.max_decode_patches);
  for (SampleSlice& slice : slices) {
    if (!slice.end_of_stream) {
      return Status::DataLoss("slice from loader " + std::to_string(slice.loader_id) +
                              " lacks end-of-stream marker");
    }
    samples_by_id.reserve(samples_by_id.size() + slice.samples.size());
    for (std::shared_ptr<Sample>& s : slice.samples) {
      if (config_.decode_deferred_images && s->meta.image_tokens > 0 && s->pixels.empty()) {
        // Transformation reordering: the loader shipped compressed bytes.
        // The loader dropped its reference at pop, so the decode mutates the
        // sole owner before the sample is frozen into the const map.
        Result<SimTime> decoded = deferred_decode.Apply(*s);
        if (!decoded.ok()) {
          return decoded.status();
        }
      }
      uint64_t id = s->meta.sample_id;
      samples_by_id.emplace(id, std::move(s));
    }
  }
  StepData data;
  data.plan = plan;
  data.buckets = OwnedBucketsLocked(plan);
  data.microbatches.resize(data.buckets.size());

  // One pass over the plan: group this constructor's assignments by
  // (bucket, microbatch), preserving plan order within each bin.
  std::unordered_map<int32_t, size_t> bucket_pos;
  bucket_pos.reserve(data.buckets.size());
  for (size_t i = 0; i < data.buckets.size(); ++i) {
    bucket_pos.emplace(data.buckets[i], i);
  }
  std::vector<BucketBins> bins(data.buckets.size());
  for (BucketBins& b : bins) {
    b.resize(static_cast<size_t>(std::max<int32_t>(plan.num_microbatches, 0)));
  }
  for (const SliceAssignment& a : plan.assignments) {
    auto pos = bucket_pos.find(a.bucket);
    if (pos == bucket_pos.end() || a.microbatch < 0 || a.microbatch >= plan.num_microbatches) {
      continue;  // another constructor's bucket (or malformed bin index)
    }
    bins[pos->second][static_cast<size_t>(a.microbatch)].push_back(&a);
  }

  // Multi-scale batching: the plan's per-step scale bounds packing, never
  // exceeding the configured ceiling (keeps the oracle formula identical).
  const int32_t pack_len = plan.pack_max_seq_len > 0
                               ? std::min(plan.pack_max_seq_len, config_.max_seq_len)
                               : config_.max_seq_len;
  int64_t payload = 0;
  for (size_t i = 0; i < data.buckets.size(); ++i) {
    MSD_RETURN_IF_ERROR(AssembleBucket(samples_by_id, bins[i], pack_len, &data.microbatches[i]));
    for (const Microbatch& mb : data.microbatches[i]) {
      for (const PackedSequence& seq : mb.sequences) {
        // Pixels are retained by the step via views into the loaders' frozen
        // decode buffers; charge them with the step's resident payload.
        payload += static_cast<int64_t>(seq.tokens.size() * sizeof(int32_t) +
                                        seq.position_ids.size() * sizeof(int32_t) +
                                        seq.PixelCount() * static_cast<int64_t>(sizeof(float)));
      }
    }
  }
  data.charge = MemCharge(accountant_, config_.node, MemCategory::kBatchBuffer, payload);
  int64_t step = plan.step;
  steps_.erase(step);
  steps_.emplace(step, std::move(data));
  ++steps_built_;
  EvictOldSteps(step);
  return Status::Ok();
}

namespace {

// Slices one canonical payload view for a CP coordinate. Adjacent chunks are
// coalesced first (e.g. zig-zag pieces 1 and 2 of 4 form one window), so a
// coordinate whose chunks touch is an O(1) alias over the step's frozen
// buffer; only truly disjoint chunks are concatenated into a fresh buffer
// (once per coordinate — the caller caches the result for every rank sharing
// it). Materialized bytes are reported through `materialized_bytes`.
TokenView SliceForRanges(const TokenView& full,
                         const std::vector<std::pair<int32_t, int32_t>>& ranges,
                         int64_t* materialized_bytes) {
  std::vector<std::pair<int32_t, int32_t>> merged;
  size_t total = 0;
  for (auto [begin, end] : ranges) {
    if (end <= begin) {
      continue;
    }
    total += static_cast<size_t>(end - begin);
    if (!merged.empty() && merged.back().second == begin) {
      merged.back().second = end;
    } else {
      merged.emplace_back(begin, end);
    }
  }
  if (merged.empty()) {
    return TokenView();
  }
  if (merged.size() == 1) {
    auto [begin, end] = merged.front();
    return full.Slice(static_cast<size_t>(begin), static_cast<size_t>(end - begin));
  }
  std::vector<int32_t> out;
  out.reserve(total);
  for (auto [begin, end] : merged) {
    out.insert(out.end(), full.begin() + begin, full.begin() + end);
  }
  *materialized_bytes += static_cast<int64_t>(total * sizeof(int32_t));
  return TokenView(std::move(out));
}

}  // namespace

const DataConstructor::CachedView& DataConstructor::SliceViewFor(StepData& data,
                                                                 size_t bucket_pos,
                                                                 int32_t cp_coord) const {
  auto key = std::make_pair(bucket_pos, cp_coord);
  auto cached = data.views.find(key);
  if (cached != data.views.end()) {
    return *cached->second;
  }
  const std::vector<Microbatch>& built = data.microbatches[bucket_pos];
  auto view = std::make_shared<CachedView>();
  view->microbatches.reserve(built.size());
  bool metadata_only = cp_coord < 0;
  int64_t materialized = 0;
  for (const Microbatch& mb : built) {
    Microbatch v;
    v.microbatch_index = mb.microbatch_index;
    v.sequences.reserve(mb.sequences.size());
    for (const PackedSequence& seq : mb.sequences) {
      PackedSequence out;
      out.sample_ids = seq.sample_ids;
      out.segment_lengths = seq.segment_lengths;
      out.total_tokens = seq.total_tokens;
      out.padded_to = seq.padded_to;
      if (!metadata_only) {
        std::vector<std::pair<int32_t, int32_t>> ranges =
            CpSliceRanges(seq.padded_to, tree_->spec().cp, cp_coord, config_.cp_split);
        out.tokens = SliceForRanges(seq.tokens, ranges, &materialized);
        out.position_ids = SliceForRanges(seq.position_ids, ranges, &materialized);
        // Pixel payloads ride whole at every CP coordinate (CP slices the
        // token stream; patch embeddings inject at sentinel positions), so
        // the cached view aliases the loaders' frozen buffers — zero pixel
        // bytes are ever materialized on this plane.
        out.pixel_segments = seq.pixel_segments;
      }
      view->payload_bytes += static_cast<int64_t>(
          out.tokens.size() * sizeof(int32_t) + out.position_ids.size() * sizeof(int32_t) +
          out.PixelCount() * static_cast<int64_t>(sizeof(float)));
      v.sequences.push_back(std::move(out));
    }
    view->microbatches.push_back(std::move(v));
  }
  if (materialized > 0) {
    // Disjoint-chunk slices add resident payload beyond the canonical
    // buffers; account for them so the memory model sees what is held.
    data.view_charges.emplace_back(accountant_, config_.node, MemCategory::kBatchBuffer,
                                   materialized);
  }
  const CachedView& ref = *view;
  data.views.emplace(key, std::move(view));
  return ref;
}

RankBatch DataConstructor::MakeRankView(StepData& data, int32_t rank) const {
  RankBatch batch;
  batch.rank = rank;
  batch.step = data.plan.step;
  RankCoord coord = CoordOfRank(tree_->spec(), rank);
  batch.metadata_only = coord.pp > 0;

  int32_t bucket = tree_->BucketOfRank(data.plan.axis, rank, data.plan.group_size);
  auto it = std::find(data.buckets.begin(), data.buckets.end(), bucket);
  if (it == data.buckets.end()) {
    return batch;  // rank's bucket not owned here; empty view
  }
  size_t bucket_pos = static_cast<size_t>(it - data.buckets.begin());
  const CachedView& view = SliceViewFor(data, bucket_pos, batch.metadata_only ? -1 : coord.cp);
  // The copy is metadata-deep only: token payloads inside the microbatches
  // are views, so every rank sharing this (bucket, cp) aliases one buffer.
  batch.microbatches = view.microbatches;
  batch.payload_bytes = view.payload_bytes;
  return batch;
}

Result<RankBatch> DataConstructor::GetBatch(int32_t rank, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = steps_.find(step);
  if (it == steps_.end()) {
    return Status::NotFound("step " + std::to_string(step) + " not built on constructor " +
                            std::to_string(config_.constructor_id));
  }
  if (rank < 0 || rank >= tree_->spec().WorldSize()) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world");
  }
  ++batches_served_;
  return MakeRankView(it->second, rank);
}

void DataConstructor::Reshard(const ClientPlaceTree* tree) {
  MSD_CHECK(tree != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  tree_ = tree;
  // Resident data built for the old mesh is dropped; the next BuildStep uses
  // the new topology (the paper's "fast resharding of resident data" re-keys
  // partitions, which for token-sliced views is equivalent to a rebuild).
  // Under the streaming API the prefetch pipeline immediately rebuilds its
  // live steps from retained slices, so prefetched data survives the reshard.
  steps_.clear();
}

void DataConstructor::ReleaseStep(int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  steps_.erase(step);
}

std::vector<int64_t> DataConstructor::ResidentSteps() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> steps;
  steps.reserve(steps_.size());
  for (const auto& [step, data] : steps_) {
    steps.push_back(step);
  }
  return steps;
}

void DataConstructor::EvictOldSteps(int64_t current_step) {
  while (!steps_.empty() && steps_.begin()->first <= current_step - config_.resident_steps) {
    steps_.erase(steps_.begin());
  }
}

}  // namespace msd
