#include "src/api/session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/data/synthetic.h"
#include "src/data/transform.h"
#include "src/service/shared_plane.h"
#include "src/storage/wire.h"
#include "src/telemetry/bridge.h"

namespace msd {

Session::Session(Options options)
    : options_(std::move(options)),
      tree_(ClientPlaceTree::FromDeviceMesh(options_.spec, options_.num_microbatches)) {}

Session::~Session() {
  if (metrics_view_ != nullptr && metrics_collector_ >= 0) {
    // Unregister before any teardown: RemoveCollector blocks until no
    // Snapshot() is mid-flight, so a concurrent scrape can never run our
    // collector against a half-destroyed session — the pipeline/planner it
    // reads are still fully alive here. Matters most when the registry is a
    // shared plane's, which outlives this session.
    metrics_view_->RemoveCollector(metrics_collector_);
  }
  if (pipeline_ != nullptr) {
    pipeline_->Stop();  // join the producer before tearing down the actors
  }
  system_.Shutdown();
  if (options_.shared_plane != nullptr && io_view_ != nullptr) {
    // Shared-plane teardown ordering: the actors are gone (no new Fetches for
    // this tenant can be issued), but reads they started may still be running
    // or queued on the shared scheduler. Drain them deterministically before
    // returning, so a caller may free tenant-scoped state (e.g. via
    // SharedIoPlane::DrainAndRemoveTenant) the moment the session is gone.
    io_view_->DrainTenant(options_.io_tenant);
  }
}

Result<std::unique_ptr<Session>> Session::Create(Options options) {
  if (options.corpus.sources.empty()) {
    return Status::InvalidArgument("corpus has no sources");
  }
  if (options.prefetch_depth < 0) {
    return Status::InvalidArgument("prefetch_depth must be >= 0");
  }
  if (options.block_cache_bytes < 0 || options.read_ahead_groups < 0 ||
      options.storage_get_latency < 0 || options.row_group_bytes < 0) {
    return Status::InvalidArgument("io options must be >= 0");
  }
  if (options.shared_plane != nullptr) {
    // The plane provides the whole I/O tier; a session bound to one must not
    // stand up a private cache/latency/fault/durable-GCS stack underneath it.
    if (options.block_cache_bytes > 0 || !options.cache_spill_dir.empty() ||
        options.storage_get_latency > 0 || options.storage_faults.enabled() ||
        !options.gcs_spill_dir.empty()) {
      return Status::InvalidArgument(
          "a shared-plane session must leave the per-session I/O options "
          "unset (block cache, cache spill, storage latency/faults, gcs "
          "spill) — the plane provides them");
    }
    if (options.io_tenant < 0) {
      return Status::InvalidArgument("io_tenant must be >= 0");
    }
  } else if (options.io_tenant != kDefaultIoTenant || !options.gcs_namespace.empty()) {
    return Status::InvalidArgument(
        "io_tenant/gcs_namespace only apply with a shared I/O plane "
        "(WithSharedIoPlane)");
  }
  if (options.read_ahead_groups > 0 && options.block_cache_bytes <= 0 &&
      options.shared_plane == nullptr) {
    return Status::InvalidArgument(
        "read-ahead needs the block cache (WithBlockCache) to land its "
        "prefetched groups somewhere");
  }
  if (!options.cache_spill_dir.empty() && options.block_cache_bytes <= 0) {
    return Status::InvalidArgument("cache spill needs the block cache enabled");
  }
  if (options.storage_faults.enabled() && options.block_cache_bytes <= 0) {
    return Status::InvalidArgument(
        "storage fault injection needs the block cache (WithBlockCache): the "
        "retry machinery under test lives in the ranged-read path");
  }
  if (options.io_retry.max_attempts < 1 || options.produce_retry_attempts < 1) {
    return Status::InvalidArgument("retry budgets must be >= 1 attempt");
  }
  if (options.trace_ring_spans < 0) {
    return Status::InvalidArgument("trace_ring_spans must be >= 0 (0 = no tracing)");
  }
  if (options.health.enabled) {
    if (!options.telemetry_enabled) {
      return Status::InvalidArgument(
          "the health monitor reads the metrics registry and span ring "
          "(WithTelemetry)");
    }
    if (options.trace_ring_spans <= 0 && options.shared_plane == nullptr) {
      return Status::InvalidArgument(
          "stall attribution needs the span ring (WithTraceRing > 0)");
    }
    if (options.prefetch_depth < 1) {
      // The health tick fires from the producer thread after each produced
      // step; synchronous mode has no producer thread to fire it from.
      return Status::InvalidArgument(
          "the health monitor requires an asynchronous pipeline "
          "(prefetch_depth >= 1)");
    }
  }
  if (options.quarantine_after_failures < 0 || options.loader_rpc_timeout_ms < 0 ||
      options.watchdog_interval_ms < 0 || options.watchdog_heartbeat_timeout_ms < 0) {
    return Status::InvalidArgument("chaos-plane options must be >= 0");
  }
  if (options.watchdog_interval_ms > 0) {
    if (!options.enable_fault_tolerance) {
      return Status::InvalidArgument(
          "the watchdog needs hot-standby shadows to promote (WithFaultTolerance)");
    }
    if (options.prefetch_depth < 1) {
      // The scan fires from the producer thread between steps; synchronous
      // mode has no producer thread to fire it from.
      return Status::InvalidArgument(
          "the watchdog requires an asynchronous pipeline (prefetch_depth >= 1)");
    }
  }
  if (options.quarantine_after_failures > 0 &&
      options.produce_retry_attempts <= options.quarantine_after_failures) {
    // The planner needs K consecutive failed gathers to quarantine, and each
    // failed gather surfaces as one failed (retried) produce round — give
    // production enough budget to live through the quarantine decision plus
    // the first renormalized round.
    options.produce_retry_attempts = options.quarantine_after_failures + 2;
  }
  if (!options.auto_checkpoint_dir.empty() || options.auto_checkpoint_every > 0) {
    if (options.auto_checkpoint_dir.empty() || options.auto_checkpoint_every <= 0) {
      return Status::InvalidArgument(
          "auto-checkpoint needs both a directory and a positive step interval");
    }
    if (!options.enable_checkpoint_journal) {
      return Status::InvalidArgument(
          "auto-checkpoint requires the checkpoint journal (WithCheckpointJournal)");
    }
    if (options.prefetch_depth < 1) {
      // The periodic save fires from the producer thread; synchronous mode
      // has no producer thread to fire it from.
      return Status::InvalidArgument(
          "auto-checkpoint requires an asynchronous pipeline (prefetch_depth >= 1)");
    }
  }
  if (options.backbone.layers == 0) {
    options.backbone = Llama12B();
  }
  if (options.encoder.layers == 0) {
    options.encoder = ViT1B();
  }
  if (options.mixture_schedule != nullptr) {
    if (options.schedule != nullptr) {
      return Status::InvalidArgument(
          "WithMixtureSchedule and WithSchedule are mutually exclusive — the "
          "mixture schedule IS the mixing schedule");
    }
    if (options.mixture_schedule->num_sources() != options.corpus.sources.size()) {
      return Status::InvalidArgument(
          "mixture schedule arity (" +
          std::to_string(options.mixture_schedule->num_sources()) +
          ") must match the corpus source count (" +
          std::to_string(options.corpus.sources.size()) + ")");
    }
    for (int32_t scale : options.mixture_schedule->scale_set()) {
      if (scale <= 0 || scale > options.max_seq_len) {
        return Status::InvalidArgument(
            "mixture scale_set entries must be in (0, max_seq_len]; got " +
            std::to_string(scale) + " with max_seq_len " +
            std::to_string(options.max_seq_len));
      }
    }
    options.schedule = options.mixture_schedule;
  }
  if (options.schedule == nullptr) {
    options.schedule =
        std::make_shared<StaticMix>(options.corpus.UniformWeights());
  }
  std::unique_ptr<Session> session(new Session(std::move(options)));
  if (!session->options_.resume_dir.empty()) {
    // Durable resume: load (and checksum-verify) the checkpoint before any
    // heavy initialization; Initialize() then rewinds the data plane to it.
    ObjectStore ckpt_store(session->options_.resume_dir);
    Result<CheckpointState> loaded = CheckpointReader::Load(ckpt_store);
    if (!loaded.ok()) {
      return loaded.status();
    }
    session->resume_ = std::make_unique<CheckpointState>(std::move(loaded.value()));
  }
  Status init = session->Initialize();
  if (!init.ok()) {
    return init;
  }
  return session;
}

Strategy Session::BuildStrategy() const {
  StrategyOptions so;
  so.samples_per_step = options_.samples_per_step;
  so.schedule = options_.schedule;
  so.method = options_.balance_method;
  switch (options_.strategy) {
    case StrategyKind::kVanilla:
      return MakeVanillaStrategy(so);
    case StrategyKind::kBackboneBalance:
      return MakeLlmBalanceStrategy(so, BackboneCostFn(options_.backbone));
    case StrategyKind::kHybridBalance:
      return MakeVlmHybridStrategy(so, BackboneCostFn(options_.backbone),
                                   EncoderCostFn(options_.encoder));
  }
  return MakeVanillaStrategy(so);
}

Status Session::Initialize() {
  // 0a. Telemetry plane: the registry/tracer every subsystem below exports
  // into. A plane-bound session adopts the PLANE's (one registry per plane
  // keeps operator snapshots cross-tenant consistent and one trace ring
  // interleaves every tenant's spans); an owned session stands up its own.
  if (options_.telemetry_enabled) {
    if (options_.shared_plane != nullptr) {
      metrics_view_ = options_.shared_plane->metrics();
      tracer_view_ = options_.shared_plane->tracer();
    } else {
      metrics_ = std::make_unique<MetricsRegistry>();
      metrics_view_ = metrics_.get();
      if (options_.trace_ring_spans > 0) {
        tracer_ = std::make_unique<StepTracer>(static_cast<size_t>(options_.trace_ring_spans));
        tracer_view_ = tracer_.get();
      }
    }
  }
  if (metrics_view_ != nullptr) {
    // Producer-path latency histograms. Tenant-labelled on a shared plane so
    // co-hosted jobs' planning/production costs stay separable.
    const IoTenantId label =
        options_.shared_plane != nullptr ? options_.io_tenant : kMetricNoTenant;
    plan_ms_hist_ = metrics_view_->GetHistogram(
        "msd_step_plan_ms", {0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}, label);
    produce_ms_hist_ = metrics_view_->GetHistogram(
        "msd_step_produce_ms", {1, 2.5, 5, 10, 25, 50, 100, 250, 1000}, label);
  }
  if (options_.health.enabled) {
    // 0b. Diagnosis plane. Built on the (possibly plane-owned) registry and
    // tracer adopted above; strictly read-side, so standing it up changes no
    // delivered byte.
    health_ = std::make_unique<HealthMonitor>(options_.health, options_.io_tenant,
                                              metrics_view_, tracer_view_);
  }

  // 0. Durable GCS: attach the disk-backed write-through before anything
  // journals state, so every plan/snapshot write from step 0 on survives
  // the process. A shared-plane session uses the plane's store under its
  // tenant namespace ("gcs/<ns>/"), so co-hosted jobs never read each
  // other's journals.
  if (!options_.gcs_spill_dir.empty()) {
    gcs_spill_ = std::make_unique<ObjectStore>(options_.gcs_spill_dir);
    system_.gcs().AttachDurableStore(gcs_spill_.get());
  } else if (options_.shared_plane != nullptr &&
             options_.shared_plane->gcs_store() != nullptr) {
    std::string prefix = "gcs/";
    if (!options_.gcs_namespace.empty()) {
      prefix += options_.gcs_namespace + "/";
    }
    system_.gcs().AttachDurableStore(options_.shared_plane->gcs_store(),
                                     std::move(prefix));
  }

  // 1. Materialize the corpus into the object store.
  CorpusSpec corpus = options_.corpus;
  if (options_.rows_per_file_override > 0) {
    for (SourceSpec& src : corpus.sources) {
      src.rows_per_file = options_.rows_per_file_override;
    }
  }
  MsdfWriteOptions write_options;
  if (options_.row_group_bytes > 0) {
    write_options.target_row_group_bytes = options_.row_group_bytes;
  } else {
    write_options.target_row_group_bytes = 4 * kMiB;  // synthetic default
  }
  // Shared-plane tenants materialize into the PLANE's store, which dedups
  // sources already written by an earlier tenant (same spec + seed = same
  // bytes); owned sessions write into their private store as before.
  Result<int64_t> rows =
      options_.shared_plane != nullptr
          ? options_.shared_plane->MaterializeCorpus(corpus, options_.seed, write_options)
          : WriteCorpus(store_, corpus, options_.seed, write_options);
  if (!rows.ok()) {
    return rows.status();
  }

  // 1b. Remote-storage I/O subsystem. A shared-plane session binds to the
  // plane's cache + fair-share scheduler (non-owning views) instead of
  // standing up its own; an owned session builds the decorators + cache +
  // scheduler exactly as before and points the views at them.
  ObjectStore* loader_store = &store_;
  if (options_.shared_plane != nullptr) {
    loader_store = options_.shared_plane->loader_store(options_.io_tenant);
    cache_view_ = options_.shared_plane->cache();
    io_view_ = options_.shared_plane->scheduler();
  }
  if (options_.storage_get_latency > 0) {
    RemoteStorageParams params;
    params.get_latency = options_.storage_get_latency;
    if (options_.storage_bandwidth_bytes_per_sec > 0) {
      params.bandwidth_bytes_per_sec = options_.storage_bandwidth_bytes_per_sec;
    }
    remote_store_ = std::make_unique<LatencyInjectingStore>(&store_, params);
    loader_store = remote_store_.get();
  }
  if (options_.storage_faults.enabled()) {
    // Chaos decorator goes outside the latency decorator — fault(latency(
    // base)) — so an injected timeout still pays the latency of the Get it
    // interrupted, and a retried Get pays it again.
    fault_store_ = std::make_unique<FaultInjectingStore>(loader_store, options_.storage_faults);
    loader_store = fault_store_.get();
  }
  if (options_.block_cache_bytes > 0) {
    BlockCache::Config cache_config;
    cache_config.capacity_bytes = options_.block_cache_bytes;
    if (!options_.cache_spill_dir.empty()) {
      cache_spill_store_ = std::make_unique<ObjectStore>(options_.cache_spill_dir);
      cache_config.spill = cache_spill_store_.get();
    }
    block_cache_ = std::make_unique<BlockCache>(cache_config);
    IoScheduler::Config io_config;
    // Deep read-ahead windows need matching issue depth or the prefetches
    // serialize behind each other; the pool threads spend their time parked
    // in (simulated) storage latency, so scaling them is cheap.
    io_config.threads = static_cast<size_t>(
        std::clamp(options_.read_ahead_groups * 2, 4, 32));
    io_config.max_inflight = static_cast<int32_t>(io_config.threads);
    io_config.retry = options_.io_retry;
    io_config.hedge = options_.io_hedge;
    io_config.tracer = tracer_view_;
    io_ = std::make_unique<IoScheduler>(loader_store, block_cache_.get(), io_config);
    cache_view_ = block_cache_.get();
    io_view_ = io_.get();
  }

  // 2. Offline source auto-partitioning from per-source cost profiles.
  std::vector<SourceCostProfile> profiles;
  Rng profile_rng(options_.seed ^ 0x51);
  for (const SourceSpec& src : corpus.sources) {
    SourceCostProfile profile;
    profile.source_id = src.source_id;
    RunningStat stat;
    for (int i = 0; i < 16; ++i) {
      SampleMeta meta = src.DrawMeta(profile_rng, 0);
      stat.Add(static_cast<double>(
          SampleTransformLatency(meta, src.transform_cost_multiplier)));
    }
    profile.transform_cost = stat.mean();
    profile.memory_bytes =
        src.num_files * (kSocketBufferBytes + 64 * kKiB + src.rows_per_file * 8 * kKiB);
    profiles.push_back(profile);
  }
  ClusterResources resources;
  resources.total_workers = std::max<int64_t>(
      16, static_cast<int64_t>(corpus.sources.size()) * options_.loader_workers);
  PartitionBounds bounds;
  bounds.wactor = options_.loader_workers;
  partitions_ = AutoPartitionSources(profiles, resources, bounds);

  // 3. Spawn Source Loaders (+ shadows) per partition actor.
  std::map<int32_t, const SourceSpec*> spec_of;
  for (const SourceSpec& src : corpus.sources) {
    spec_of[src.source_id] = &src;
  }
  int32_t next_loader_id = 0;
  for (const LoaderPartition& part : partitions_) {
    const SourceSpec& src = *spec_of.at(part.source_id);
    int32_t actors = std::min<int32_t>(part.num_actors, static_cast<int32_t>(src.num_files));
    actors = std::max(actors, 1);
    for (int32_t a = 0; a < actors; ++a) {
      SourceLoaderConfig config;
      config.loader_id = next_loader_id++;
      config.spec = src;
      if (options_.rows_per_file_override > 0) {
        config.spec.rows_per_file = options_.rows_per_file_override;
      }
      for (int64_t f = a; f < src.num_files; f += actors) {
        config.files.push_back(SourceFileName(src, f));
      }
      config.num_workers = std::max(1, part.workers_per_actor);
      config.defer_image_decode = options_.defer_image_decode;
      config.max_decode_patches = options_.bound_pixel_decode ? options_.max_seq_len : 0;
      config.arena_decode = options_.arena_decode;
      config.read_ahead_groups = options_.read_ahead_groups;
      config.ranged_reads = remote_store_ != nullptr || options_.shared_plane != nullptr;
      config.io_tenant = options_.io_tenant;
      config.buffer_low_watermark =
          static_cast<size_t>(options_.samples_per_step) * 2 / std::max<size_t>(1, actors) + 8;
      auto loader = system_.Spawn<SourceLoader>(config, loader_store, &memory_, io_view_);
      Status open = system_.Ask<Status>(*loader, [l = loader.get()] { return l->Open(); });
      if (!open.ok()) {
        return open;
      }
      loaders_.push_back(loader);
      if (options_.enable_fault_tolerance) {
        SourceLoaderConfig shadow_config = config;
        shadow_config.is_shadow = true;
        auto shadow =
            system_.Spawn<SourceLoader>(shadow_config, loader_store, &memory_, io_view_);
        Status shadow_open =
            system_.Ask<Status>(*shadow, [s = shadow.get()] { return s->Open(); });
        if (!shadow_open.ok()) {
          return shadow_open;
        }
        shadows_.push_back(shadow);
      }
    }
  }

  // 4. One Data Constructor per DP group. The resident window must cover the
  // whole prefetch pipeline plus the late-fetch margin of the deprecated
  // lockstep shim, or eviction could race consumption at high depths.
  for (int32_t dp = 0; dp < options_.spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = options_.max_seq_len;
    config.max_decode_patches = options_.bound_pixel_decode ? options_.max_seq_len : 0;
    config.resident_steps =
        std::max<int64_t>(config.resident_steps, options_.prefetch_depth + 2);
    constructors_.push_back(system_.Spawn<DataConstructor>(config, &tree_, &memory_));
  }

  // 5. Central Planner with the selected strategy.
  PlannerConfig planner_config;
  planner_config.seed = options_.seed;
  planner_config.mixture = options_.mixture_schedule;
  planner_config.quarantine_after_failures = options_.quarantine_after_failures;
  planner_config.quarantine_probe_interval = options_.quarantine_probe_interval;
  if (options_.loader_rpc_timeout_ms > 0) {
    planner_config.loader_rpc_timeout_ms = options_.loader_rpc_timeout_ms;
  }
  planner_ =
      system_.Spawn<Planner>(planner_config, &system_, &tree_, BuildStrategy(), &memory_);
  std::vector<SourceLoader*> raw_loaders;
  raw_loaders.reserve(loaders_.size());
  for (auto& l : loaders_) {
    raw_loaders.push_back(l.get());
  }
  system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
    p->SetLoaders(raw_loaders);
    return true;
  });

  // 6. Fault tolerance manager.
  if (options_.enable_fault_tolerance) {
    FaultToleranceConfig ft_config;
    ft_config.loader_snapshot_interval = options_.loader_snapshot_interval;
    ft_ = std::make_unique<FaultToleranceManager>(ft_config, &system_);
    for (size_t i = 0; i < loaders_.size(); ++i) {
      ft_->RegisterPair(loaders_[i].get(), shadows_[i].get());
    }
  }

  // 6b. Heartbeat watchdog: catches loaders that die silently (heartbeat
  // stops, no error ever surfaces) and promotes their shadows mid-stream.
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::make_unique<Watchdog>(&system_, ft_.get(),
                                           options_.watchdog_heartbeat_timeout_ms);
    // Loaders heartbeat when they answer a metadata gather; stamp t0 for
    // everyone so a loader that dies before its first gather is measured
    // from session start (the GCS treats a never-heartbeated actor as
    // infinitely stale, which would promote healthy-but-unasked loaders).
    const int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now().time_since_epoch())
                               .count();
    for (auto& loader : loaders_) {
      system_.gcs().Heartbeat(loader->name(), now_ms);
    }
    for (auto& shadow : shadows_) {
      system_.gcs().Heartbeat(shadow->name(), now_ms);
    }
    last_watchdog_scan_ms_ = now_ms;
  }

  // 7. Checkpoint support: the per-step rewind ring (spans the build-ahead
  // window), then — when resuming — rewind the freshly built data plane to
  // the loaded checkpoint before the pipeline starts producing.
  state_journal_ =
      std::make_unique<StepStateJournal>(static_cast<size_t>(options_.prefetch_depth) + 4);
  if (resume_ != nullptr) {
    MSD_RETURN_IF_ERROR(ApplyResumeState());
    start_step_ = resume_->commit_step;
    next_step_ = start_step_;
  }

  // 8. The prefetch pipeline: builds steps ahead of consumption and retires
  // them by rank refcount. Starts producing immediately (warmup) — from the
  // resumed commit frontier when this session was built via ResumeFrom.
  PrefetchPipeline::Config pipeline_config;
  pipeline_config.depth = options_.prefetch_depth;
  pipeline_config.start_step = start_step_;
  pipeline_config.produce_max_attempts = options_.produce_retry_attempts;
  pipeline_config.tracer = tracer_view_;
  pipeline_config.tenant = options_.io_tenant;
  if (watchdog_ != nullptr) {
    // Scan while production is stuck retrying: a dead loader's gather fails
    // every attempt, and the only way out is the shadow promotion this
    // callback drives (the retry backoff gives the promotion time to land).
    pipeline_config.on_produce_error = [this](int64_t, const Status&) { MaybeRunWatchdog(); };
  }
  if (health_ != nullptr) {
    // Produce-retry exhaustion is a hard health event: the pipeline halts
    // terminally, so dump the evidence while the span ring still holds it.
    pipeline_config.on_halted = [this](int64_t step, const Status& error) {
      health_->OnHardEvent("produce-exhausted",
                           "step " + std::to_string(step) + ": " + error.ToString());
    };
  }
  if (options_.auto_checkpoint_every > 0) {
    // Fires on the producer thread between steps (outside in_produce_), so
    // the Checkpoint() pause/drain cannot deadlock with production.
    pipeline_config.on_produced = [this](int64_t step) {
      if ((step + 1) % options_.auto_checkpoint_every != 0) {
        return;
      }
      CheckpointWriter::Options writer_options;
      writer_options.keep_generations = options_.checkpoint_keep_generations;
      Result<std::string> saved = Checkpoint(options_.auto_checkpoint_dir, writer_options);
      if (!saved.ok()) {
        MSD_LOG_WARN("auto-checkpoint after step %lld failed: %s",
                     static_cast<long long>(step), saved.status().ToString().c_str());
      }
    };
  }
  if (watchdog_ != nullptr) {
    // Steady-state scan cadence: piggyback on the per-step callback (fires
    // outside in_produce_, so the scan's Pause() bracket cannot deadlock
    // with production). Composes with the auto-checkpoint hook above.
    std::function<void(int64_t)> chained = std::move(pipeline_config.on_produced);
    pipeline_config.on_produced = [this, chained = std::move(chained)](int64_t step) {
      if (chained) {
        chained(step);
      }
      MaybeRunWatchdog();
    };
  }
  if (health_ != nullptr) {
    // Health tick LAST: on_produced_meta fires after the whole on_produced
    // chain (checkpoint, watchdog), so the tick observes the post-checkpoint,
    // post-watchdog state of the step — and it receives the StepMeta captured
    // under the pipeline lock, so a consumer that pops and retires the step
    // before the hooks run cannot starve the monitor of observations.
    pipeline_config.on_produced_meta =
        [this](const PrefetchPipeline::StepMeta& meta) { HealthTick(meta); };
  }
  if (resume_ != nullptr && options_.spec == resume_->mesh &&
      resume_->cursors.size() == static_cast<size_t>(options_.spec.WorldSize())) {
    // Same mesh: every rank resumes at its exact cursor, so no rank
    // re-receives or skips a step. On a changed mesh ranks have no stable
    // identity across the resume; everyone starts at the commit frontier.
    pipeline_config.initial_cursors = resume_->cursors;
  }
  pipeline_ = std::make_unique<PrefetchPipeline>(
      pipeline_config, options_.spec.WorldSize(),
      [this](int64_t step) { return ProduceStep(step); },
      [this](int32_t rank, int64_t step) { return FetchFromConstructor(rank, step); },
      [this](const LoadingPlan& plan, const std::vector<std::vector<SampleSlice>>& slices) {
        return BuildConstructors(plan, slices);
      },
      [this](int64_t step) { ReleaseStepOnConstructors(step); });

  // 9. Register this session's collector with the registry. An owned session
  // bridges its whole stack; a plane-bound one contributes only the series
  // the plane cannot see (pipeline progress, quarantine), tenant-labelled —
  // the plane's own collector covers cache/scheduler/storage for every
  // tenant, so no series is ever emitted twice.
  if (metrics_view_ != nullptr) {
    const bool shared = options_.shared_plane != nullptr;
    metrics_collector_ = metrics_view_->AddCollector(
        [this, shared](std::vector<MetricPoint>* out) {
          const IoTenantId label = shared ? options_.io_tenant : kMetricNoTenant;
          AppendPipelineMetrics(pipeline_->stats(), label, out);
          if (options_.quarantine_after_failures > 0) {
            MetricPoint q;
            q.name = "msd_sources_quarantined";
            q.kind = MetricKind::kGauge;
            q.tenant = label;
            q.value = static_cast<double>(
                system_.Ask<int64_t>(*planner_, [p = planner_.get()] {
                  return static_cast<int64_t>(p->quarantined_loaders().size());
                }));
            out->push_back(std::move(q));
          }
          if (options_.mixture_schedule != nullptr) {
            // Schedule gauges from the planner's last-planned-step snapshot:
            // the phase index, the multi-scale pick, and one effective-weight
            // gauge per source (quarantine-masked, temperature-scaled).
            const Planner::MixtureStatus mix = system_.Ask<Planner::MixtureStatus>(
                *planner_, [p = planner_.get()] { return p->mixture_status(); });
            if (mix.step >= 0) {
              MetricPoint phase;
              phase.name = "msd_mixture_phase";
              phase.kind = MetricKind::kGauge;
              phase.tenant = label;
              phase.value = static_cast<double>(mix.phase);
              out->push_back(std::move(phase));
              MetricPoint scale;
              scale.name = "msd_mixture_scale";
              scale.kind = MetricKind::kGauge;
              scale.tenant = label;
              scale.value = static_cast<double>(mix.scale);
              out->push_back(std::move(scale));
              for (size_t s = 0; s < mix.effective_weights.size(); ++s) {
                MetricPoint weight;
                weight.name = "msd_mixture_effective_weight_s" + std::to_string(s);
                weight.kind = MetricKind::kGauge;
                weight.tenant = label;
                weight.value = mix.effective_weights[s];
                out->push_back(std::move(weight));
              }
            }
          }
          if (shared) {
            return;
          }
          if (cache_view_ != nullptr) {
            AppendCacheMetrics(cache_view_->stats(), kMetricNoTenant, out);
          }
          if (io_view_ != nullptr) {
            AppendSchedulerMetrics(io_view_->stats(), kMetricNoTenant, out);
          }
          if (remote_store_ != nullptr) {
            AppendStorageMetrics(remote_store_->gets(), remote_store_->bytes_served(),
                                 kMetricNoTenant, out);
          }
          if (fault_store_ != nullptr) {
            AppendFaultMetrics(fault_store_->faults_injected(),
                               fault_store_->corruptions_injected(),
                               fault_store_->brownout_failures(), kMetricNoTenant, out);
          }
          if (watchdog_ != nullptr) {
            MetricPoint w;
            w.name = "msd_watchdog_detections_total";
            w.kind = MetricKind::kCounter;
            w.value = static_cast<double>(watchdog_->detections());
            out->push_back(std::move(w));
          }
          AppendPayloadMetrics(out);
          AppendLoggingMetrics(out);
        });
  }

  pipeline_->Start();
  return Status::Ok();
}

CheckpointFingerprint Session::ComputeFingerprint() const {
  CheckpointFingerprint fp;
  // Everything that determines the byte stream must be hashed: the resumed
  // job replays pops against a corpus it re-materializes from these specs.
  WireWriter w;
  for (const SourceSpec& src : options_.corpus.sources) {
    w.PutU32(static_cast<uint32_t>(src.source_id));
    w.PutBytes(src.name);
    w.PutU8(static_cast<uint8_t>(src.modality));
    w.PutI64(src.num_files);
    w.PutI64(options_.rows_per_file_override > 0 ? options_.rows_per_file_override
                                                 : src.rows_per_file);
    w.PutF64(src.transform_cost_multiplier);
    w.PutU32(static_cast<uint32_t>(src.text_bucket_weights.size()));
    for (double weight : src.text_bucket_weights) {
      w.PutF64(weight);
    }
    w.PutU32(static_cast<uint32_t>(src.image_bucket_weights.size()));
    for (double weight : src.image_bucket_weights) {
      w.PutF64(weight);
    }
  }
  // Row-group sizing shapes the refill granularity and with it the buffer
  // contents the planner sees — a resume must re-materialize identically.
  // (Cache/read-ahead/latency options are deliberately NOT hashed: they
  // change timing, never bytes.)
  w.PutI64(options_.row_group_bytes);
  // The MixSchedule is an opaque callable, but its weight trajectory is
  // observable: probe it at a spread of steps so a resume with different
  // stage weights (or a missing curriculum) fails validation instead of
  // silently forking the stream. A custom schedule that differs only at
  // unprobed steps still slips through — supply the identical schedule.
  if (options_.mixture_schedule != nullptr) {
    // The dynamic schedule is hashed structurally (phases, temperatures,
    // scale set, scale seed): probing WeightsAt would fold runtime-committed
    // overrides into the fingerprint and reject every resume of a job that
    // ever called UpdateMixture. Overrides travel in the planner checkpoint.
    w.PutU64(options_.mixture_schedule->StructuralFingerprint());
  } else {
    for (int64_t probe : {0, 1, 7, 50, 400, 3000, 20000}) {
      for (double weight : options_.schedule->WeightsAt(probe)) {
        w.PutF64(weight);
      }
    }
  }
  // The decode bound clamps pixel counts before packing — byte-affecting.
  w.PutU8(options_.bound_pixel_decode ? 1 : 0);
  fp.corpus_hash = Fnv1a64(w.buffer());
  fp.seed = options_.seed;
  fp.samples_per_step = options_.samples_per_step;
  fp.max_seq_len = options_.max_seq_len;
  fp.num_microbatches = options_.num_microbatches;
  fp.loader_workers = options_.loader_workers;
  fp.strategy = static_cast<uint8_t>(options_.strategy);
  fp.balance_method = static_cast<uint8_t>(options_.balance_method);
  fp.defer_image_decode = options_.defer_image_decode ? 1 : 0;
  return fp;
}

Status Session::ApplyResumeState() {
  const CheckpointState& ckpt = *resume_;
  if (!(ComputeFingerprint() == ckpt.fingerprint)) {
    return Status::FailedPrecondition(
        "resume options incompatible with checkpoint: corpus/seed/step-shape "
        "must match the checkpointed job (only mesh and prefetch depth may "
        "change)");
  }
  const int64_t commit = ckpt.commit_step;
  const bool dp_same = options_.spec.dp == ckpt.mesh.dp;
  if (!dp_same && ckpt.planner_at_commit.next_unplanned != commit) {
    // The commit frontier sits inside a window that was itself replayed from
    // an older checkpoint's journal, so no replayable planner state exists
    // at exactly `commit` — and a DP change cannot reuse the journaled plans
    // (their bucketing is bound to the old DP degree).
    return Status::FailedPrecondition(
        "cannot change the DP degree while resuming inside a replayed plan "
        "window; consume past step " +
        std::to_string(ckpt.planner_at_commit.next_unplanned) +
        " and checkpoint again first");
  }

  // Rewind every loader (and its shadow) to its read-state after the pops of
  // step commit-1; deterministic refill rebuilds the exact buffer.
  if (commit > 0) {
    for (size_t i = 0; i < loaders_.size(); ++i) {
      const int32_t loader_id = loaders_[i]->config().loader_id;
      auto it = ckpt.loader_snapshots.find(loader_id);
      if (it == ckpt.loader_snapshots.end()) {
        return Status::DataLoss("checkpoint has no snapshot for loader " +
                                std::to_string(loader_id));
      }
      Result<LoaderSnapshot> snap = LoaderSnapshot::Deserialize(it->second);
      if (!snap.ok()) {
        return snap.status();
      }
      Status restored = system_.Ask<Status>(
          *loaders_[i],
          [l = loaders_[i].get(), s = snap.value()] { return l->Restore(s); });
      if (!restored.ok()) {
        return restored;
      }
      if (i < shadows_.size() && shadows_[i] != nullptr) {
        Status shadow_restored = system_.Ask<Status>(
            *shadows_[i],
            [l = shadows_[i].get(), s = std::move(snap.value())] { return l->Restore(s); });
        if (!shadow_restored.ok()) {
          return shadow_restored;
        }
      }
    }
  }

  // Rewind the planner. Same DP degree: restore the produce-frontier state
  // and install the journaled in-flight plans [commit, P) — they are served
  // as cache hits and rebuilt against whatever mesh is now bound, the same
  // machinery Reshard() uses. Different DP degree: the journaled bucketing
  // is unusable, so restore the commit-frontier state and deterministically
  // replan everything from `commit` against the new mesh.
  if (dp_same) {
    std::map<int64_t, LoadingPlan> replay;
    for (const auto& [step, bytes] : ckpt.plan_journal) {
      Result<LoadingPlan> plan = LoadingPlan::Deserialize(bytes);
      if (!plan.ok()) {
        return plan.status();
      }
      replay.emplace(step, std::move(plan.value()));
    }
    system_.Ask<bool>(*planner_, [p = planner_.get(), state = ckpt.planner_at_frontier,
                                  replay = std::move(replay)]() mutable {
      p->RestoreCheckpoint(state, std::move(replay));
      return true;
    });
  } else {
    system_.Ask<bool>(*planner_, [p = planner_.get(), state = ckpt.planner_at_commit] {
      p->RestoreCheckpoint(state);
      return true;
    });
  }

  // Seed the FT machinery: the loader snapshots double as the differential-
  // checkpoint frontier (post-resume recovery replays plans after commit-1).
  if (ft_ != nullptr) {
    if (commit > 0) {
      ft_->SeedSnapshots(commit - 1, ckpt.loader_snapshots);
    }
    ft_->RestoreCounters(ckpt.ft_snapshots_taken, ckpt.ft_promotions);
  }

  // Seed the rewind ring so an immediate re-checkpoint at the same frontier
  // still finds its commit-state entry.
  if (commit > 0) {
    StepStateEntry entry;
    entry.step = commit - 1;
    entry.planner = ckpt.planner_at_commit;
    entry.loader_snapshots = ckpt.loader_snapshots;
    state_journal_->Record(std::move(entry));
  }
  return Status::Ok();
}

Result<std::string> Session::Checkpoint(const std::string& dir,
                                        CheckpointWriter::Options writer_options) {
  if (!options_.enable_checkpoint_journal) {
    return Status::FailedPrecondition(
        "checkpointing disabled for this session (enable_checkpoint_journal)");
  }
  // Serialize with the other control operations: a user-called Checkpoint and
  // the periodic auto-checkpoint (producer thread) must not interleave their
  // pause/resume brackets with each other or with Reshard/loader recovery.
  std::lock_guard<std::mutex> control(control_mu_);
  // Drain production so no pop/build is mid-air, then commit the pipeline's
  // retirement frontier C: steps below it are fully consumed by every rank;
  // steps in [C, P) were popped but not consumed — the resumed job re-pops
  // them from the rewound loaders using the journaled plans.
  pipeline_->Pause();
  PrefetchPipeline::Frontier frontier = pipeline_->frontier();
  CheckpointState state;
  state.commit_step = frontier.commit_step;
  state.produce_frontier = frontier.produce_frontier;
  state.mesh = options_.spec;
  state.prefetch_depth = options_.prefetch_depth;
  state.cursors = frontier.cursors;
  state.planner_at_frontier = system_.Ask<PlannerCheckpoint>(
      *planner_, [p = planner_.get()] { return p->CheckpointState(); });
  if (frontier.commit_step > 0) {
    std::optional<StepStateEntry> entry = state_journal_->EntryFor(frontier.commit_step - 1);
    if (!entry.has_value()) {
      pipeline_->Resume();
      return Status::Internal("no rewind point recorded for step " +
                              std::to_string(frontier.commit_step - 1) +
                              " (state-journal window exceeded)");
    }
    state.planner_at_commit = entry->planner;
    state.loader_snapshots = std::move(entry->loader_snapshots);
  } else {
    // Nothing consumed yet: the commit state is the seed state.
    state.planner_at_commit.rng_state = Rng(options_.seed).state();
  }
  // The in-flight plan window, straight from the high-frequency GCS journal.
  // A hole here would make a same-DP resume fail at restore time, when the
  // original process may already be gone — fail the save loudly instead.
  for (int64_t s = frontier.commit_step; s < state.planner_at_frontier.next_unplanned; ++s) {
    std::optional<std::string> blob = system_.gcs().GetState(Planner::PlanJournalKey(s));
    if (!blob.has_value()) {
      pipeline_->Resume();
      return Status::DataLoss("plan journal has no entry for in-flight step " +
                              std::to_string(s) + "; refusing to publish a checkpoint "
                              "that could not be resumed");
    }
    state.plan_journal.emplace(s, std::move(blob.value()));
  }
  state.fault_tolerance = ft_ != nullptr;
  if (ft_ != nullptr) {
    state.ft_snapshots_taken = ft_->snapshots_taken();
    state.ft_promotions = ft_->promotions();
  }
  state.fingerprint = ComputeFingerprint();

  ObjectStore ckpt_store(dir);
  CheckpointWriter writer(&ckpt_store, writer_options);
  Result<std::string> id = writer.Write(state);
  pipeline_->Resume();
  return id;
}

// One production round: plan the step, pop every constructor's slices from
// the loaders (fanned out with AskAsync; per-loader order matches the old
// lockstep loop so results are byte-identical), build all constructors
// concurrently, and retain the slices for rebuild-after-reshard.
Result<ProducedStep> Session::ProduceStep(int64_t step) {
  const auto produce_t0 = std::chrono::steady_clock::now();
  Result<LoadingPlan> plan_result = [&] {
    ScopedSpan span(tracer_view_, "step.plan", "step", options_.io_tenant, step);
    Result<LoadingPlan> r = system_.Ask<Result<LoadingPlan>>(
        *planner_, [p = planner_.get(), step] { return p->GetPlan(step); });
    span.set_ok(r.ok());
    return r;
  }();
  if (!plan_result.ok()) {
    return plan_result.status();
  }
  ProducedStep produced;
  produced.plan = std::move(plan_result.value());
  const LoadingPlan& plan = produced.plan;

  if (options_.mixture_schedule != nullptr && tracer_view_ != nullptr) {
    // Schedule-phase marker span: zero-duration, `source` carries the phase
    // index so a trace shows exactly where each curriculum phase begins.
    TraceSpan mix_span;
    mix_span.name = "step.mix";
    mix_span.cat = "step";
    mix_span.ts_us = tracer_view_->NowUs();
    mix_span.tenant = options_.io_tenant;
    mix_span.step = step;
    mix_span.source = plan.mix_phase;
    tracer_view_->Record(mix_span);
  }

  std::unordered_map<int32_t, SourceLoader*> loader_by_id;
  loader_by_id.reserve(loaders_.size());
  for (auto& l : loaders_) {
    loader_by_id.emplace(l->config().loader_id, l.get());
  }

  // Route each planned sample to the constructor owning its bucket.
  std::unordered_map<int32_t, size_t> ci_of_bucket;
  for (size_t ci = 0; ci < constructors_.size(); ++ci) {
    for (int32_t bucket : constructors_[ci]->OwnedBuckets(plan)) {
      ci_of_bucket.emplace(bucket, ci);
    }
  }

  // One pop per loader per step, ids in plan order — exactly the pop the
  // fault-tolerance manager mirrors into shadows (OnPlanExecuted), so a
  // promoted shadow's buffer refills are byte-for-byte the primary's. The
  // pops fan out concurrently across loaders via AskAsync.
  std::map<int32_t, std::vector<uint64_t>> ids_by_loader;
  std::unordered_map<uint64_t, size_t> ci_of_sample;
  ci_of_sample.reserve(plan.assignments.size());
  for (const SliceAssignment& a : plan.assignments) {
    auto owner = ci_of_bucket.find(a.bucket);
    if (owner == ci_of_bucket.end()) {
      continue;  // bucket outside this session's constructors (malformed plan)
    }
    ids_by_loader[a.loader_id].push_back(a.sample_id);
    ci_of_sample.emplace(a.sample_id, owner->second);
  }
  std::vector<std::pair<int32_t, std::future<Result<SampleSlice>>>> pops;
  for (auto& [loader_id, ids] : ids_by_loader) {
    auto it = loader_by_id.find(loader_id);
    if (it == loader_by_id.end()) {
      return Status::NotFound("plan references unknown loader " + std::to_string(loader_id));
    }
    // ids stays in the map (copied into the closure, not moved): if this pop
    // hangs, RecoverHungPop re-issues the identical request to the shadow.
    pops.emplace_back(loader_id, system_.AskAsync<Result<SampleSlice>>(
                                     *it->second, [l = it->second, step, ids] {
                                       return l->PopSamples(step, ids);
                                     }));
  }
  // With a watchdog engaged, a pop is only allowed to block for the RPC
  // deadline: a silently wedged loader (accepted the message, never answers)
  // would otherwise stall the producer forever — the gather-side timeout
  // never fires again because production never reaches the next gather.
  const int64_t pop_deadline_ms =
      watchdog_ != nullptr ? (options_.loader_rpc_timeout_ms > 0
                                  ? options_.loader_rpc_timeout_ms
                                  : options_.watchdog_heartbeat_timeout_ms)
                           : 0;

  // Split each loader slice per constructor (shared_ptr bumps, no copies).
  // The step.pop span covers the gather: the fan-out above is non-blocking,
  // so the wall time the producer spends on pops is all here.
  produced.slices_per_constructor.resize(constructors_.size());
  Status popped = [&]() -> Status {
    ScopedSpan span(tracer_view_, "step.pop", "step", options_.io_tenant, step);
    for (auto& [loader_id, future] : pops) {
      // Per-loader detail span: how long the gather waited on THIS source.
      // Attribution uses it to name the dominant source when the verdict is
      // decode-bound; step.pop above stays the exclusive-bucket total.
      const int64_t wait_ts_us = tracer_view_ != nullptr ? tracer_view_->NowUs() : 0;
      const auto wait_t0 = std::chrono::steady_clock::now();
      Result<SampleSlice> slice = Status::Internal("pop never resolved");
      if (pop_deadline_ms > 0 && future.wait_for(std::chrono::milliseconds(pop_deadline_ms)) !=
                                     std::future_status::ready) {
        slice = RecoverHungPop(loader_id, step, ids_by_loader[loader_id]);
      } else {
        slice = future.get();
      }
      if (tracer_view_ != nullptr) {
        TraceSpan wait_span;
        wait_span.name = "pop.wait";
        wait_span.cat = "step";
        wait_span.ts_us = wait_ts_us;
        wait_span.dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - wait_t0)
                               .count();
        wait_span.tenant = options_.io_tenant;
        wait_span.step = step;
        auto owner_loader = loader_by_id.find(loader_id);
        wait_span.source = owner_loader != loader_by_id.end()
                               ? owner_loader->second->config().spec.source_id
                               : -1;
        wait_span.ok = slice.ok();
        tracer_view_->Record(wait_span);
      }
      if (!slice.ok()) {
        span.set_ok(false);
        return slice.status();
      }
      std::vector<SampleSlice> split(constructors_.size());
      for (SampleSlice& s : split) {
        s.step = slice->step;
        s.loader_id = slice->loader_id;
        s.end_of_stream = slice->end_of_stream;
      }
      for (std::shared_ptr<Sample>& sample : slice->samples) {
        auto owner = ci_of_sample.find(sample->meta.sample_id);
        if (owner != ci_of_sample.end()) {
          split[owner->second].samples.push_back(std::move(sample));
        }
      }
      for (size_t ci = 0; ci < split.size(); ++ci) {
        if (!split[ci].samples.empty()) {
          produced.slices_per_constructor[ci].push_back(std::move(split[ci]));
        }
      }
    }
    return Status::Ok();
  }();
  if (!popped.ok()) {
    return popped;
  }

  {
    ScopedSpan span(tracer_view_, "step.build", "step", options_.io_tenant, step);
    Status built = BuildConstructors(plan, produced.slices_per_constructor);
    span.set_ok(built.ok());
    if (!built.ok()) {
      return built;
    }
  }

  if (ft_ != nullptr) {
    MSD_RETURN_IF_ERROR(ft_->OnPlanExecuted(plan));
  }

  // Record this step's rewind point for Checkpoint(): the planner cursor and
  // every loader's differential snapshot as of "step produced". Small state
  // (cursor + consumed ids); the asks fan out like the pops above so the
  // producer pays one round-trip, not one per loader.
  if (options_.enable_checkpoint_journal) {
    StepStateEntry rewind;
    rewind.step = step;
    std::future<PlannerCheckpoint> planner_state = system_.AskAsync<PlannerCheckpoint>(
        *planner_, [p = planner_.get()] { return p->CheckpointState(); });
    std::vector<std::pair<int32_t, std::future<LoaderSnapshot>>> snapshots;
    snapshots.reserve(loaders_.size());
    for (auto& loader : loaders_) {
      snapshots.emplace_back(loader->config().loader_id,
                             system_.AskAsync<LoaderSnapshot>(
                                 *loader, [l = loader.get()] { return l->Snapshot(); }));
    }
    rewind.planner = planner_state.get();
    for (auto& [loader_id, future] : snapshots) {
      // Same silent-hang guard as the pops above: a wedged loader whose pop
      // happened to land ahead of the wedge would otherwise stall production
      // here, where no gather timeout can ever fire again. The shadow was
      // mirrored through this step (OnPlanExecuted ran before this block), so
      // its snapshot is the one the primary owed.
      if (pop_deadline_ms > 0 && future.wait_for(std::chrono::milliseconds(pop_deadline_ms)) !=
                                     std::future_status::ready) {
        Result<SourceLoader*> promoted = PromoteHungLoader(loader_id, step, "snapshot");
        if (!promoted.ok()) {
          return promoted.status();
        }
        SourceLoader* replacement = promoted.value();
        LoaderSnapshot snap = system_.Ask<LoaderSnapshot>(
            *replacement, [replacement] { return replacement->Snapshot(); });
        rewind.loader_snapshots.emplace(loader_id, snap.Serialize());
      } else {
        rewind.loader_snapshots.emplace(loader_id, future.get().Serialize());
      }
    }
    state_journal_->Record(std::move(rewind));
  }

  produced.samples = plan.assignments.size();
  for (const SliceAssignment& a : plan.assignments) {
    produced.tokens += a.total_tokens;
  }
  produced.dp_imbalance = Imbalance(plan.BucketLoads());
  produced.plan_compute_ms = system_.Ask<double>(
      *planner_, [p = planner_.get()] { return p->last_timings().compute_ms; });
  if (plan_ms_hist_ != nullptr) {
    plan_ms_hist_->Observe(produced.plan_compute_ms);
  }
  if (produce_ms_hist_ != nullptr) {
    produce_ms_hist_->Observe(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - produce_t0)
                                  .count());
  }
  return produced;
}

Status Session::BuildConstructors(
    const LoadingPlan& plan, const std::vector<std::vector<SampleSlice>>& slices_per_dp) {
  // Each constructor gets an alias copy of its slices (shared_ptr bumps, no
  // Sample copies) so the pipeline can keep the originals for rebuilds.
  std::vector<std::future<Status>> builds;
  builds.reserve(constructors_.size());
  for (size_t ci = 0; ci < constructors_.size(); ++ci) {
    DataConstructor* dc = constructors_[ci].get();
    builds.push_back(system_.AskAsync<Status>(
        *dc, [dc, &plan, slices = slices_per_dp[ci]]() mutable {
          return dc->BuildStep(plan, std::move(slices));
        }));
  }
  Status result = Status::Ok();
  for (std::future<Status>& f : builds) {
    Status built = f.get();  // gather every future before &plan goes away
    if (result.ok() && !built.ok()) {
      result = built;
    }
  }
  return result;
}

Result<RankBatch> Session::FetchFromConstructor(int32_t rank, int64_t step) {
  if (rank < 0 || rank >= options_.spec.WorldSize()) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world of " +
                                   std::to_string(options_.spec.WorldSize()));
  }
  RankCoord coord = CoordOfRank(options_.spec, rank);
  DataConstructor* constructor = constructors_[static_cast<size_t>(coord.dp)].get();
  return system_.Ask<Result<RankBatch>>(
      *constructor, [constructor, rank, step] { return constructor->GetBatch(rank, step); });
}

void Session::ReleaseStepOnConstructors(int64_t step) {
  for (auto& constructor : constructors_) {
    system_.Post(*constructor, [c = constructor.get(), step] { c->ReleaseStep(step); });
  }
}

Result<DataClient*> Session::client(int32_t rank) {
  if (rank < 0 || rank >= options_.spec.WorldSize()) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world of " +
                                   std::to_string(options_.spec.WorldSize()));
  }
  std::lock_guard<std::mutex> lock(clients_mu_);
  auto it = clients_.find(rank);
  if (it == clients_.end()) {
    it = clients_.emplace(rank,
                          std::unique_ptr<DataClient>(new DataClient(this, pipeline_.get(), rank)))
             .first;
  }
  return it->second.get();
}

Status Session::AdvanceStep() {
  int64_t step = next_step_++;
  Status produced = pipeline_->WaitProduced(step);
  if (!produced.ok()) {
    return produced;
  }
  last_stats_.step = step;
  Result<PrefetchPipeline::StepMeta> meta = pipeline_->StepInfo(step);
  if (meta.ok()) {
    last_stats_.samples = meta->samples;
    last_stats_.dp_imbalance = meta->dp_imbalance;
    last_stats_.plan_compute_ms = meta->plan_compute_ms;
    last_stats_.build_ahead_ms = meta->build_ahead_ms;
  }
  PrefetchPipeline::Stats stats = pipeline_->stats();
  last_stats_.prefetch_depth = options_.prefetch_depth;
  last_stats_.prefetch_queue_depth = stats.queue_depth;
  last_stats_.prefetch_hits = stats.prefetch_hits;
  last_stats_.prefetch_stalls = stats.prefetch_stalls;
  last_stats_.rank_stalls = pipeline_->rank_stalls();
  FillIoCounters(&last_stats_);
  FillPayloadCounters(&last_stats_);
  // The lockstep loop delivered this step; retire it so the producer can move
  // on (GetBatch still serves it from the constructors' resident window).
  pipeline_->MarkShimConsumed(step);
  return Status::Ok();
}

void Session::FillPayloadCounters(StepStats* stats) {
  // Process-wide payload-plane accounting (payload_buffer.h). Materialized
  // bytes include explicit copy-outs; report the freeze-only share and the
  // copy share separately so "zero copies on the hot path" is checkable.
  int64_t token_copies =
      PayloadPlaneStats::CopiedOutBytes(PayloadKind::kTokens).load(std::memory_order_relaxed);
  int64_t pixel_copies =
      PayloadPlaneStats::CopiedOutBytes(PayloadKind::kPixels).load(std::memory_order_relaxed);
  stats->token_bytes_frozen =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kTokens).load(std::memory_order_relaxed) -
      token_copies;
  stats->pixel_bytes_frozen =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kPixels).load(std::memory_order_relaxed) -
      pixel_copies;
  stats->payload_copy_bytes = token_copies + pixel_copies;
  stats->arena_slabs_frozen = PayloadPlaneStats::ArenaSlabsFrozen().load(std::memory_order_relaxed);
}

void Session::FillIoCounters(StepStats* stats) {
  // Shared-plane sessions report their tenant-attributed slice (the aggregate
  // would mix in the neighbours); owned sessions report their whole plane.
  const bool shared = options_.shared_plane != nullptr;
  if (cache_view_ != nullptr) {
    BlockCache::Stats cache = shared ? cache_view_->tenant_stats(options_.io_tenant)
                                     : cache_view_->stats();
    stats->cache_hits = cache.hits;
    stats->cache_misses = cache.misses;
    stats->cache_evictions = cache.evictions;
  }
  if (io_view_ != nullptr) {
    IoScheduler::Stats scheduler = shared ? io_view_->tenant_stats(options_.io_tenant)
                                          : io_view_->stats();
    stats->io_coalesced = scheduler.coalesced;
    stats->readahead_issued = scheduler.prefetch_issues;
    stats->io_retries = scheduler.retries;
    stats->io_hedges = scheduler.hedges_launched;
  }
  if (remote_store_ != nullptr) {
    stats->storage_gets = remote_store_->gets();
  } else if (shared) {
    stats->storage_gets = options_.shared_plane->backing_gets();
  }
  if (options_.quarantine_after_failures > 0) {
    stats->sources_quarantined = system_.Ask<int64_t>(*planner_, [p = planner_.get()] {
      return static_cast<int64_t>(p->quarantined_loaders().size());
    });
  }
}

void Session::HealthTick(const PrefetchPipeline::StepMeta& meta) {
  const bool shared = options_.shared_plane != nullptr;
  StepObservation obs;
  obs.step = meta.step;
  obs.step_ms = meta.build_ahead_ms;
  obs.tokens = meta.tokens;
  if (cache_view_ != nullptr) {
    BlockCache::Stats cache = shared ? cache_view_->tenant_stats(options_.io_tenant)
                                     : cache_view_->stats();
    obs.cache_lookups = cache.hits + cache.misses;
    obs.cache_hits = cache.hits;
  }
  if (io_view_ != nullptr) {
    IoScheduler::Stats scheduler = shared ? io_view_->tenant_stats(options_.io_tenant)
                                          : io_view_->stats();
    obs.io_retries = scheduler.retries;
    obs.io_issued_gets = scheduler.issued_gets;
  }
  if (options_.quarantine_after_failures > 0) {
    obs.quarantined_sources = system_.Ask<int64_t>(*planner_, [p = planner_.get()] {
      return static_cast<int64_t>(p->quarantined_loaders().size());
    });
  }
  if (watchdog_ != nullptr) {
    obs.watchdog_detections = watchdog_->detections();
  }
  health_->OnStepProduced(obs);
}

Session::IoStats Session::io_stats() {
  IoStats stats;
  stats.enabled = io_view_ != nullptr;
  stats.shared = options_.shared_plane != nullptr;
  // Aggregate + tenant slice from ONE locked pass each (SnapshotAll), so the
  // slice is exactly this session's share of the aggregate even mid-stream —
  // separate stats()/tenant_stats() calls could tear between the two. The
  // same pass backs the plane's registry collector (src/telemetry/bridge.h).
  if (cache_view_ != nullptr) {
    if (stats.shared) {
      std::map<IoTenantId, BlockCache::Stats> per_tenant;
      cache_view_->SnapshotAll(&stats.cache, &per_tenant);
      auto it = per_tenant.find(options_.io_tenant);
      if (it != per_tenant.end()) {
        stats.cache_tenant = it->second;
      }
    } else {
      stats.cache = cache_view_->stats();
      stats.cache_tenant = stats.cache;
    }
  }
  if (io_view_ != nullptr) {
    if (stats.shared) {
      std::map<IoTenantId, IoScheduler::Stats> per_tenant;
      io_view_->SnapshotAll(&stats.scheduler, &per_tenant);
      auto it = per_tenant.find(options_.io_tenant);
      if (it != per_tenant.end()) {
        stats.scheduler_tenant = it->second;
      }
    } else {
      stats.scheduler = io_view_->stats();
      stats.scheduler_tenant = stats.scheduler;
    }
  }
  if (remote_store_ != nullptr) {
    stats.storage_gets = remote_store_->gets();
    stats.storage_bytes_served = remote_store_->bytes_served();
  } else if (stats.shared) {
    LatencyInjectingStore* remote = options_.shared_plane->remote_store();
    stats.storage_gets = remote->gets();
    stats.storage_bytes_served = remote->bytes_served();
  }
  if (FaultInjectingStore* faults = fault_store(); faults != nullptr) {
    stats.faults_injected = faults->faults_injected();
    stats.corruptions_injected = faults->corruptions_injected();
    stats.brownout_failures = faults->brownout_failures();
  }
  if (options_.quarantine_after_failures > 0) {
    stats.sources_quarantined = system_.Ask<int64_t>(*planner_, [p = planner_.get()] {
      return static_cast<int64_t>(p->quarantined_loaders().size());
    });
  }
  if (watchdog_ != nullptr) {
    stats.watchdog_detections = watchdog_->detections();
  }
  return stats;
}

Status Session::DumpTrace(const std::string& path) {
  if (tracer_view_ == nullptr) {
    return Status::FailedPrecondition(
        "tracing is off for this session (telemetry disabled or trace_ring_spans = 0)");
  }
  return tracer_view_->DumpChromeTrace(path);
}

FaultInjectingStore* Session::fault_store() {
  if (fault_store_ != nullptr) {
    return fault_store_.get();
  }
  if (options_.shared_plane != nullptr) {
    return options_.shared_plane->fault_store(options_.io_tenant);
  }
  return nullptr;
}

std::map<int32_t, int64_t> Session::QuarantinedLoaders() {
  return system_.Ask<std::map<int32_t, int64_t>>(
      *planner_, [p = planner_.get()] { return p->quarantined_loaders(); });
}

Status Session::UpdateMixture(int64_t effective_step, std::vector<double> weights) {
  if (options_.mixture_schedule == nullptr) {
    return Status::FailedPrecondition(
        "UpdateMixture requires a dynamic mixture schedule (WithMixtureSchedule)");
  }
  // Routed through the planner actor so the effective step is validated
  // against the plan cursor under the same serialization as planning itself —
  // an override can never land under a step whose plan was already issued.
  return system_.Ask<Status>(
      *planner_, [p = planner_.get(), effective_step, w = std::move(weights)]() mutable {
        return p->CommitMixtureOverride(effective_step, std::move(w));
      });
}

Planner::MixtureStatus Session::LastMixtureStatus() {
  if (options_.mixture_schedule == nullptr) {
    return Planner::MixtureStatus{};
  }
  return system_.Ask<Planner::MixtureStatus>(
      *planner_, [p = planner_.get()] { return p->mixture_status(); });
}

std::vector<std::vector<int64_t>> Session::ConstructorResidentSteps() {
  std::vector<std::vector<int64_t>> resident;
  resident.reserve(constructors_.size());
  for (auto& constructor : constructors_) {
    // Ask (not a direct call) so posted releases queued ahead of us land
    // first — the mailbox is FIFO.
    resident.push_back(system_.Ask<std::vector<int64_t>>(
        *constructor, [c = constructor.get()] { return c->ResidentSteps(); }));
  }
  return resident;
}

Result<RankBatch> Session::GetBatch(int32_t rank) {
  if (next_step_ == start_step_) {
    return Status::FailedPrecondition("AdvanceStep() before GetBatch()");
  }
  return pipeline_->FetchStep(rank, next_step_ - 1);
}

PrefetchPipeline::Stats Session::pipeline_stats() const { return pipeline_->stats(); }

Result<Session::StepStats> Session::StepStatsFor(int64_t step) {
  Result<PrefetchPipeline::StepMeta> meta = pipeline_->WaitStepInfo(step);
  if (!meta.ok()) {
    return meta.status();
  }
  PrefetchPipeline::Stats pipeline = pipeline_->stats();
  StepStats stats;
  stats.step = step;
  stats.samples = meta->samples;
  stats.dp_imbalance = meta->dp_imbalance;
  stats.plan_compute_ms = meta->plan_compute_ms;
  stats.build_ahead_ms = meta->build_ahead_ms;
  stats.prefetch_depth = options_.prefetch_depth;
  stats.prefetch_queue_depth = pipeline.queue_depth;
  stats.prefetch_hits = pipeline.prefetch_hits;
  stats.prefetch_stalls = pipeline.prefetch_stalls;
  stats.rank_stalls = pipeline_->rank_stalls();
  FillIoCounters(&stats);
  FillPayloadCounters(&stats);
  return stats;
}

Result<PrefetchPipeline::Capture> Session::CaptureStep(int64_t step) {
  return pipeline_->CaptureStep(step);
}

Status Session::Reshard(const ParallelismSpec& new_spec) {
  if (new_spec.dp != options_.spec.dp) {
    return Status::InvalidArgument(
        "elastic resharding keeps the DP degree (constructors map 1:1 to DP groups); got dp=" +
        std::to_string(new_spec.dp) + " vs " + std::to_string(options_.spec.dp));
  }
  std::lock_guard<std::mutex> control(control_mu_);
  // Drain: wait out any in-flight production so no pop/build races the mesh
  // swap, then rebuild every prefetched step against the new topology.
  pipeline_->Pause();
  options_.spec = new_spec;
  tree_.Rebuild(new_spec);
  for (auto& constructor : constructors_) {
    bool ok = system_.Ask<bool>(*constructor, [c = constructor.get(), this] {
      c->Reshard(&tree_);
      return true;
    });
    if (!ok) {
      pipeline_->Resume();
      return Status::Internal("constructor failed to reshard");
    }
  }
  Status rebuilt = pipeline_->RebuildLive(new_spec.WorldSize());
  pipeline_->Resume();
  return rebuilt;
}

Result<std::string> Session::KillAndRecoverLoader(size_t loader_index) {
  if (ft_ == nullptr) {
    return Status::FailedPrecondition("fault tolerance not enabled");
  }
  if (loader_index >= loaders_.size()) {
    return Status::OutOfRange("loader index out of range");
  }
  std::lock_guard<std::mutex> control(control_mu_);
  // Drain first: an in-flight production round may be mid-Ask to the very
  // loader we are about to kill.
  pipeline_->Pause();
  SourceLoader* primary = loaders_[loader_index].get();
  std::string primary_name = primary->name();
  system_.Kill(*primary);
  Result<SourceLoader*> promoted = ft_->PromoteShadow(primary_name);
  if (!promoted.ok()) {
    pipeline_->Resume();
    return promoted.status();
  }
  loaders_[loader_index] = shadows_[loader_index];
  std::vector<SourceLoader*> raw_loaders;
  for (auto& l : loaders_) {
    raw_loaders.push_back(l.get());
  }
  system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
    p->SetLoaders(raw_loaders);
    return true;
  });
  pipeline_->Resume();
  return promoted.value()->name();
}

Result<SourceLoader*> Session::PromoteHungLoader(int32_t loader_id, int64_t step,
                                                 const char* what) {
  // Runs on the producer thread, inside ProduceStep — the only path that
  // talks to loaders. Control operations (Checkpoint, Reshard, KillAndRecover,
  // the periodic watchdog scan) all Pause() the pipeline first, which cannot
  // complete while this production round is in flight, so the loaders_ swap
  // below cannot race them.
  size_t idx = loaders_.size();
  for (size_t i = 0; i < loaders_.size(); ++i) {
    if (loaders_[i]->config().loader_id == loader_id) {
      idx = i;
      break;
    }
  }
  if (idx == loaders_.size()) {
    return Status::NotFound("hung " + std::string(what) + " for unknown loader " +
                            std::to_string(loader_id));
  }
  const std::string hung = loaders_[idx]->name();
  if (watchdog_ != nullptr) {
    watchdog_->RecordDetection();
  }
  if (ft_ == nullptr || idx >= shadows_.size() || shadows_[idx] == nullptr) {
    return Status::DeadlineExceeded("loader " + hung + " did not answer a " + what +
                                    " for step " + std::to_string(step) + " and has no standby");
  }
  Result<SourceLoader*> promoted = ft_->PromoteShadow(hung);
  if (!promoted.ok()) {
    return Status::DeadlineExceeded("loader " + hung + " did not answer a " + what +
                                    " for step " + std::to_string(step) +
                                    "; promotion failed: " + promoted.status().message());
  }
  system_.gcs().MarkDead(hung);
  loaders_[idx] = shadows_[idx];
  const int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  system_.gcs().Heartbeat(loaders_[idx]->name(), now_ms);
  std::vector<SourceLoader*> raw_loaders;
  raw_loaders.reserve(loaders_.size());
  for (auto& l : loaders_) {
    raw_loaders.push_back(l.get());
  }
  system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
    p->SetLoaders(raw_loaders);
    return true;
  });
  MSD_LOG_WARN("%s to %s hung past the RPC deadline at step %lld; promoted %s mid-production",
               what, hung.c_str(), static_cast<long long>(step),
               loaders_[idx]->name().c_str());
  return loaders_[idx].get();
}

Result<SampleSlice> Session::RecoverHungPop(int32_t loader_id, int64_t step,
                                            const std::vector<uint64_t>& ids) {
  Result<SourceLoader*> promoted = PromoteHungLoader(loader_id, step, "pop");
  if (!promoted.ok()) {
    return promoted.status();
  }
  // The shadow mirrored every completed step's pops (OnPlanExecuted) but not
  // this one — the round it replaces never finished. Re-issue the identical
  // request: the slice comes back byte-for-byte what the primary owed.
  SourceLoader* replacement = promoted.value();
  return system_.Ask<Result<SampleSlice>>(
      *replacement, [replacement, step, ids] { return replacement->PopSamples(step, ids); });
}

void Session::MaybeRunWatchdog() {
  if (watchdog_ == nullptr) {
    return;
  }
  const int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  if (now_ms - last_watchdog_scan_ms_ < options_.watchdog_interval_ms) {
    return;
  }
  // Runs on the producer thread. try_lock: if a user-called Checkpoint or
  // Reshard holds the control lock, skip this tick rather than stall the
  // producer behind it — the next tick scans.
  if (!control_mu_.try_lock()) {
    return;
  }
  std::lock_guard<std::mutex> control(control_mu_, std::adopt_lock);
  last_watchdog_scan_ms_ = now_ms;
  // Drain in-flight fetches so no rank's Ask targets a loader mid-promotion.
  // The producer itself is between steps (or between retry attempts), so
  // Pause() cannot deadlock on in_produce_.
  pipeline_->Pause();
  std::vector<std::string> promoted = watchdog_->ScanAndRecover(now_ms);
  if (!promoted.empty()) {
    bool rebound = false;
    for (size_t i = 0; i < loaders_.size() && i < shadows_.size(); ++i) {
      for (const std::string& name : promoted) {
        if (shadows_[i] != nullptr && shadows_[i]->name() == name) {
          loaders_[i] = shadows_[i];
          rebound = true;
        }
      }
    }
    for (const std::string& name : promoted) {
      // The promotion round-trip proved the replacement alive; stamp it so
      // the next scan does not declare the not-yet-gathered promotee stale.
      system_.gcs().Heartbeat(name, now_ms);
    }
    if (rebound) {
      std::vector<SourceLoader*> raw_loaders;
      raw_loaders.reserve(loaders_.size());
      for (auto& l : loaders_) {
        raw_loaders.push_back(l.get());
      }
      system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
        p->SetLoaders(raw_loaders);
        return true;
      });
    }
  }
  pipeline_->Resume();
}

SessionBuilder& SessionBuilder::WithCorpus(CorpusSpec corpus) {
  options_.corpus = std::move(corpus);
  return *this;
}
SessionBuilder& SessionBuilder::WithMesh(const ParallelismSpec& spec) {
  options_.spec = spec;
  return *this;
}
SessionBuilder& SessionBuilder::WithMicrobatches(int32_t num_microbatches) {
  options_.num_microbatches = num_microbatches;
  return *this;
}
SessionBuilder& SessionBuilder::WithSamplesPerStep(int64_t samples_per_step) {
  options_.samples_per_step = samples_per_step;
  return *this;
}
SessionBuilder& SessionBuilder::WithMaxSeqLen(int32_t max_seq_len) {
  options_.max_seq_len = max_seq_len;
  return *this;
}
SessionBuilder& SessionBuilder::WithStrategy(Session::StrategyKind kind) {
  options_.strategy = kind;
  return *this;
}
SessionBuilder& SessionBuilder::WithBackbone(ModelConfig backbone) {
  options_.backbone = backbone;
  return *this;
}
SessionBuilder& SessionBuilder::WithEncoder(ModelConfig encoder) {
  options_.encoder = encoder;
  return *this;
}
SessionBuilder& SessionBuilder::WithSchedule(std::shared_ptr<const MixSchedule> schedule) {
  options_.schedule = std::move(schedule);
  return *this;
}
SessionBuilder& SessionBuilder::WithMixtureSchedule(std::shared_ptr<MixtureSchedule> schedule) {
  options_.mixture_schedule = std::move(schedule);
  return *this;
}
SessionBuilder& SessionBuilder::WithBoundedPixelDecode(bool enabled) {
  options_.bound_pixel_decode = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithBalanceMethod(BalanceMethod method) {
  options_.balance_method = method;
  return *this;
}
SessionBuilder& SessionBuilder::WithSeed(uint64_t seed) {
  options_.seed = seed;
  return *this;
}
SessionBuilder& SessionBuilder::WithLoaderWorkers(int32_t workers) {
  options_.loader_workers = workers;
  return *this;
}
SessionBuilder& SessionBuilder::WithFaultTolerance(bool enabled) {
  options_.enable_fault_tolerance = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithSnapshotInterval(int64_t steps) {
  options_.loader_snapshot_interval = steps;
  return *this;
}
SessionBuilder& SessionBuilder::WithRowsPerFile(int64_t rows) {
  options_.rows_per_file_override = rows;
  return *this;
}
SessionBuilder& SessionBuilder::WithDeferredImageDecode(bool enabled) {
  options_.defer_image_decode = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithArenaDecode(bool enabled) {
  options_.arena_decode = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithPrefetchDepth(int32_t depth) {
  options_.prefetch_depth = depth;
  return *this;
}
SessionBuilder& SessionBuilder::ResumeFrom(std::string dir) {
  options_.resume_dir = std::move(dir);
  return *this;
}
SessionBuilder& SessionBuilder::WithDurableGcs(std::string dir) {
  options_.gcs_spill_dir = std::move(dir);
  return *this;
}
SessionBuilder& SessionBuilder::WithCheckpointJournal(bool enabled) {
  options_.enable_checkpoint_journal = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithBlockCache(int64_t bytes) {
  options_.block_cache_bytes = bytes;
  return *this;
}
SessionBuilder& SessionBuilder::WithCacheSpill(std::string dir) {
  options_.cache_spill_dir = std::move(dir);
  return *this;
}
SessionBuilder& SessionBuilder::WithReadAhead(int32_t groups) {
  options_.read_ahead_groups = groups;
  return *this;
}
SessionBuilder& SessionBuilder::WithRemoteStorage(SimTime get_latency,
                                                  double bandwidth_bytes_per_sec) {
  options_.storage_get_latency = get_latency;
  options_.storage_bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
  return *this;
}
SessionBuilder& SessionBuilder::WithRowGroupBytes(int64_t bytes) {
  options_.row_group_bytes = bytes;
  return *this;
}
SessionBuilder& SessionBuilder::WithStorageFaults(FaultSchedule schedule) {
  options_.storage_faults = std::move(schedule);
  return *this;
}
SessionBuilder& SessionBuilder::WithIoRetry(IoScheduler::RetryPolicy policy) {
  options_.io_retry = policy;
  return *this;
}
SessionBuilder& SessionBuilder::WithIoHedging(IoScheduler::HedgePolicy policy) {
  options_.io_hedge = policy;
  return *this;
}
SessionBuilder& SessionBuilder::WithSourceQuarantine(int32_t after_failures,
                                                     int64_t probe_interval) {
  options_.quarantine_after_failures = after_failures;
  options_.quarantine_probe_interval = probe_interval;
  return *this;
}
SessionBuilder& SessionBuilder::WithProduceRetries(int32_t attempts) {
  options_.produce_retry_attempts = attempts;
  return *this;
}
SessionBuilder& SessionBuilder::WithWatchdog(int64_t interval_ms,
                                             int64_t heartbeat_timeout_ms) {
  options_.watchdog_interval_ms = interval_ms;
  options_.watchdog_heartbeat_timeout_ms = heartbeat_timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithLoaderRpcTimeout(int64_t timeout_ms) {
  options_.loader_rpc_timeout_ms = timeout_ms;
  return *this;
}
SessionBuilder& SessionBuilder::WithAutoCheckpoint(std::string dir, int64_t every_n_steps) {
  options_.auto_checkpoint_dir = std::move(dir);
  options_.auto_checkpoint_every = every_n_steps;
  return *this;
}
SessionBuilder& SessionBuilder::WithCheckpointRetention(int32_t generations) {
  options_.checkpoint_keep_generations = generations;
  return *this;
}
SessionBuilder& SessionBuilder::WithSharedIoPlane(SharedIoPlane* plane, IoTenantId tenant) {
  options_.shared_plane = plane;
  options_.io_tenant = tenant;
  return *this;
}
SessionBuilder& SessionBuilder::WithGcsNamespace(std::string ns) {
  options_.gcs_namespace = std::move(ns);
  return *this;
}
SessionBuilder& SessionBuilder::WithTelemetry(bool enabled) {
  options_.telemetry_enabled = enabled;
  return *this;
}
SessionBuilder& SessionBuilder::WithTraceRing(int64_t spans) {
  options_.trace_ring_spans = spans;
  return *this;
}
SessionBuilder& SessionBuilder::WithHealthMonitor(HealthOptions health) {
  health.enabled = true;
  options_.health = std::move(health);
  return *this;
}

Result<std::unique_ptr<Session>> SessionBuilder::Build() {
  return Session::Create(std::move(options_));
}

}  // namespace msd
