#include "src/api/session.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/data/synthetic.h"
#include "src/data/transform.h"

namespace msd {

Session::Session(Options options)
    : options_(std::move(options)),
      tree_(ClientPlaceTree::FromDeviceMesh(options_.spec, options_.num_microbatches)) {}

Session::~Session() { system_.Shutdown(); }

Result<std::unique_ptr<Session>> Session::Create(Options options) {
  if (options.corpus.sources.empty()) {
    return Status::InvalidArgument("corpus has no sources");
  }
  if (options.backbone.layers == 0) {
    options.backbone = Llama12B();
  }
  if (options.encoder.layers == 0) {
    options.encoder = ViT1B();
  }
  if (options.schedule == nullptr) {
    options.schedule =
        std::make_shared<StaticMix>(options.corpus.UniformWeights());
  }
  std::unique_ptr<Session> session(new Session(std::move(options)));
  Status init = session->Initialize();
  if (!init.ok()) {
    return init;
  }
  return session;
}

Strategy Session::BuildStrategy() const {
  StrategyOptions so;
  so.samples_per_step = options_.samples_per_step;
  so.schedule = options_.schedule;
  so.method = options_.balance_method;
  switch (options_.strategy) {
    case StrategyKind::kVanilla:
      return MakeVanillaStrategy(so);
    case StrategyKind::kBackboneBalance:
      return MakeLlmBalanceStrategy(so, BackboneCostFn(options_.backbone));
    case StrategyKind::kHybridBalance:
      return MakeVlmHybridStrategy(so, BackboneCostFn(options_.backbone),
                                   EncoderCostFn(options_.encoder));
  }
  return MakeVanillaStrategy(so);
}

Status Session::Initialize() {
  // 1. Materialize the corpus into the object store.
  CorpusSpec corpus = options_.corpus;
  if (options_.rows_per_file_override > 0) {
    for (SourceSpec& src : corpus.sources) {
      src.rows_per_file = options_.rows_per_file_override;
    }
  }
  Result<int64_t> rows = WriteCorpus(store_, corpus, options_.seed);
  if (!rows.ok()) {
    return rows.status();
  }

  // 2. Offline source auto-partitioning from per-source cost profiles.
  std::vector<SourceCostProfile> profiles;
  Rng profile_rng(options_.seed ^ 0x51);
  for (const SourceSpec& src : corpus.sources) {
    SourceCostProfile profile;
    profile.source_id = src.source_id;
    RunningStat stat;
    for (int i = 0; i < 16; ++i) {
      SampleMeta meta = src.DrawMeta(profile_rng, 0);
      stat.Add(static_cast<double>(
          SampleTransformLatency(meta, src.transform_cost_multiplier)));
    }
    profile.transform_cost = stat.mean();
    profile.memory_bytes =
        src.num_files * (kSocketBufferBytes + 64 * kKiB + src.rows_per_file * 8 * kKiB);
    profiles.push_back(profile);
  }
  ClusterResources resources;
  resources.total_workers = std::max<int64_t>(
      16, static_cast<int64_t>(corpus.sources.size()) * options_.loader_workers);
  PartitionBounds bounds;
  bounds.wactor = options_.loader_workers;
  partitions_ = AutoPartitionSources(profiles, resources, bounds);

  // 3. Spawn Source Loaders (+ shadows) per partition actor.
  std::map<int32_t, const SourceSpec*> spec_of;
  for (const SourceSpec& src : corpus.sources) {
    spec_of[src.source_id] = &src;
  }
  int32_t next_loader_id = 0;
  for (const LoaderPartition& part : partitions_) {
    const SourceSpec& src = *spec_of.at(part.source_id);
    int32_t actors = std::min<int32_t>(part.num_actors, static_cast<int32_t>(src.num_files));
    actors = std::max(actors, 1);
    for (int32_t a = 0; a < actors; ++a) {
      SourceLoaderConfig config;
      config.loader_id = next_loader_id++;
      config.spec = src;
      if (options_.rows_per_file_override > 0) {
        config.spec.rows_per_file = options_.rows_per_file_override;
      }
      for (int64_t f = a; f < src.num_files; f += actors) {
        config.files.push_back(SourceFileName(src, f));
      }
      config.num_workers = std::max(1, part.workers_per_actor);
      config.defer_image_decode = options_.defer_image_decode;
      config.buffer_low_watermark =
          static_cast<size_t>(options_.samples_per_step) * 2 / std::max<size_t>(1, actors) + 8;
      auto loader = system_.Spawn<SourceLoader>(config, &store_, &memory_);
      Status open = system_.Ask<Status>(*loader, [l = loader.get()] { return l->Open(); });
      if (!open.ok()) {
        return open;
      }
      loaders_.push_back(loader);
      if (options_.enable_fault_tolerance) {
        SourceLoaderConfig shadow_config = config;
        shadow_config.is_shadow = true;
        auto shadow = system_.Spawn<SourceLoader>(shadow_config, &store_, &memory_);
        Status shadow_open =
            system_.Ask<Status>(*shadow, [s = shadow.get()] { return s->Open(); });
        if (!shadow_open.ok()) {
          return shadow_open;
        }
        shadows_.push_back(shadow);
      }
    }
  }

  // 4. One Data Constructor per DP group.
  for (int32_t dp = 0; dp < options_.spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = options_.max_seq_len;
    constructors_.push_back(system_.Spawn<DataConstructor>(config, &tree_, &memory_));
  }

  // 5. Central Planner with the selected strategy.
  PlannerConfig planner_config;
  planner_config.seed = options_.seed;
  planner_ =
      system_.Spawn<Planner>(planner_config, &system_, &tree_, BuildStrategy(), &memory_);
  std::vector<SourceLoader*> raw_loaders;
  raw_loaders.reserve(loaders_.size());
  for (auto& l : loaders_) {
    raw_loaders.push_back(l.get());
  }
  system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
    p->SetLoaders(raw_loaders);
    return true;
  });

  // 6. Fault tolerance manager.
  if (options_.enable_fault_tolerance) {
    FaultToleranceConfig ft_config;
    ft_config.loader_snapshot_interval = options_.loader_snapshot_interval;
    ft_ = std::make_unique<FaultToleranceManager>(ft_config, &system_);
    for (size_t i = 0; i < loaders_.size(); ++i) {
      ft_->RegisterPair(loaders_[i].get(), shadows_[i].get());
    }
  }
  return Status::Ok();
}

Status Session::AdvanceStep() {
  int64_t step = next_step_++;
  Result<LoadingPlan> plan_result = system_.Ask<Result<LoadingPlan>>(
      *planner_, [p = planner_.get(), step] { return p->GetPlan(step); });
  if (!plan_result.ok()) {
    return plan_result.status();
  }
  const LoadingPlan& plan = plan_result.value();

  // Group the plan's pops by (constructor, loader). Loaders are indexed once
  // per step; bucket ownership tests are O(1).
  std::unordered_map<int32_t, SourceLoader*> loader_by_id;
  loader_by_id.reserve(loaders_.size());
  for (auto& l : loaders_) {
    loader_by_id.emplace(l->config().loader_id, l.get());
  }
  for (auto& constructor : constructors_) {
    std::vector<int32_t> owned = constructor->OwnedBuckets(plan);
    std::unordered_set<int32_t> owned_set(owned.begin(), owned.end());
    std::map<int32_t, std::vector<uint64_t>> ids_by_loader;
    for (const SliceAssignment& a : plan.assignments) {
      if (owned_set.count(a.bucket) > 0) {
        ids_by_loader[a.loader_id].push_back(a.sample_id);
      }
    }
    std::vector<SampleSlice> slices;
    slices.reserve(ids_by_loader.size());
    for (auto& [loader_id, ids] : ids_by_loader) {
      auto it = loader_by_id.find(loader_id);
      if (it == loader_by_id.end()) {
        return Status::NotFound("plan references unknown loader " + std::to_string(loader_id));
      }
      Result<SampleSlice> slice = system_.Ask<Result<SampleSlice>>(
          *it->second,
          [l = it->second, step, ids = std::move(ids)] { return l->PopSamples(step, ids); });
      if (!slice.ok()) {
        return slice.status();
      }
      slices.push_back(std::move(slice.value()));
    }
    Status built = system_.Ask<Status>(
        *constructor, [c = constructor.get(), &plan, slices = std::move(slices)]() mutable {
          return c->BuildStep(plan, std::move(slices));
        });
    if (!built.ok()) {
      return built;
    }
  }

  if (ft_ != nullptr) {
    MSD_RETURN_IF_ERROR(ft_->OnPlanExecuted(plan));
  }

  last_stats_.step = step;
  last_stats_.samples = plan.assignments.size();
  last_stats_.dp_imbalance = Imbalance(plan.BucketLoads());
  last_stats_.plan_compute_ms = system_.Ask<double>(
      *planner_, [p = planner_.get()] { return p->last_timings().compute_ms; });
  return Status::Ok();
}

Result<RankBatch> Session::GetBatch(int32_t rank) {
  if (next_step_ == 0) {
    return Status::FailedPrecondition("AdvanceStep() before GetBatch()");
  }
  RankCoord coord = CoordOfRank(options_.spec, rank);
  DataConstructor* constructor = constructors_[static_cast<size_t>(coord.dp)].get();
  int64_t step = next_step_ - 1;
  return system_.Ask<Result<RankBatch>>(
      *constructor, [constructor, rank, step] { return constructor->GetBatch(rank, step); });
}

Status Session::Reshard(const ParallelismSpec& new_spec) {
  if (new_spec.dp != options_.spec.dp) {
    return Status::InvalidArgument(
        "elastic resharding keeps the DP degree (constructors map 1:1 to DP groups); got dp=" +
        std::to_string(new_spec.dp) + " vs " + std::to_string(options_.spec.dp));
  }
  options_.spec = new_spec;
  tree_.Rebuild(new_spec);
  for (auto& constructor : constructors_) {
    bool ok = system_.Ask<bool>(*constructor, [c = constructor.get(), this] {
      c->Reshard(&tree_);
      return true;
    });
    if (!ok) {
      return Status::Internal("constructor failed to reshard");
    }
  }
  return Status::Ok();
}

Result<std::string> Session::KillAndRecoverLoader(size_t loader_index) {
  if (ft_ == nullptr) {
    return Status::FailedPrecondition("fault tolerance not enabled");
  }
  if (loader_index >= loaders_.size()) {
    return Status::OutOfRange("loader index out of range");
  }
  SourceLoader* primary = loaders_[loader_index].get();
  std::string primary_name = primary->name();
  system_.Kill(*primary);
  Result<SourceLoader*> promoted = ft_->PromoteShadow(primary_name);
  if (!promoted.ok()) {
    return promoted.status();
  }
  loaders_[loader_index] = shadows_[loader_index];
  std::vector<SourceLoader*> raw_loaders;
  for (auto& l : loaders_) {
    raw_loaders.push_back(l.get());
  }
  system_.Ask<bool>(*planner_, [p = planner_.get(), raw_loaders] {
    p->SetLoaders(raw_loaders);
    return true;
  });
  return promoted.value()->name();
}

}  // namespace msd
