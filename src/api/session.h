// msd::Session — the public entry point.
//
// A Session materializes a synthetic (or caller-provided) corpus into the
// object store, auto-partitions sources into Source Loader actors, deploys
// one Data Constructor per DP group plus a central Planner, and then serves
// real batches:
//
//   msd::Session::Options options;
//   options.corpus = msd::MakeCoyo700m();
//   options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 2};
//   auto session = msd::Session::Create(std::move(options)).value();
//   session->AdvanceStep();                        // plan + pop + build
//   msd::RankBatch batch = session->GetBatch(0).value();
//
// All components run as actors on an in-process ActorSystem; the flow follows
// the paper's pull model (client -> Data Constructor -> Planner -> Source
// Loaders -> storage).
#ifndef SRC_API_SESSION_H_
#define SRC_API_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/constructor/data_constructor.h"
#include "src/data/source_spec.h"
#include "src/ft/fault_tolerance.h"
#include "src/loader/source_loader.h"
#include "src/mesh/client_place_tree.h"
#include "src/planner/autoscaler.h"
#include "src/planner/planner.h"
#include "src/planner/strategies.h"
#include "src/storage/object_store.h"

namespace msd {

class Session {
 public:
  enum class StrategyKind { kVanilla, kBackboneBalance, kHybridBalance };

  struct Options {
    CorpusSpec corpus;
    ParallelismSpec spec;
    int32_t num_microbatches = 4;
    int64_t samples_per_step = 32;
    int32_t max_seq_len = 4096;
    StrategyKind strategy = StrategyKind::kBackboneBalance;
    ModelConfig backbone;                        // defaults to Llama12B()
    ModelConfig encoder;                         // defaults to ViT1B()
    std::shared_ptr<const MixSchedule> schedule; // defaults to uniform static
    BalanceMethod balance_method = BalanceMethod::kGreedy;
    uint64_t seed = 2026;
    int32_t loader_workers = 2;
    bool enable_fault_tolerance = false;
    int64_t loader_snapshot_interval = 8;
    // Rows materialized per source file (kept small for fast startup).
    int64_t rows_per_file_override = 0;
    // Transformation reordering (Sec. 6.2): ship compressed image bytes from
    // loaders and decode at the Data Constructor.
    bool defer_image_decode = false;
  };

  struct StepStats {
    int64_t step = 0;
    double dp_imbalance = 1.0;     // max/mean across DP bucket loads
    size_t samples = 0;
    double plan_compute_ms = 0.0;
  };

  static Result<std::unique_ptr<Session>> Create(Options options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Plans the next step, pops samples from loaders, builds constructors.
  Status AdvanceStep();

  // Batch view for `rank` at the most recently advanced step.
  Result<RankBatch> GetBatch(int32_t rank);

  // Injects a loader failure and recovers via shadow promotion (requires
  // enable_fault_tolerance). Returns the promoted loader's name.
  Result<std::string> KillAndRecoverLoader(size_t loader_index);

  // Elastic resharding (Sec. 6.1): adopts a new parallelism layout on the
  // fly. The DP degree must be unchanged (Data Constructors map 1:1 to DP
  // groups); CP/PP/TP may change freely. Resident constructor data for old
  // steps is dropped; the next AdvanceStep plans against the new mesh.
  Status Reshard(const ParallelismSpec& new_spec);

  int64_t current_step() const { return next_step_ - 1; }
  const StepStats& last_stats() const { return last_stats_; }
  const ClientPlaceTree& tree() const { return tree_; }
  const MemoryAccountant& memory() const { return memory_; }
  const std::vector<LoaderPartition>& partitions() const { return partitions_; }
  size_t num_loaders() const { return loaders_.size(); }
  ActorSystem& actor_system() { return system_; }

 private:
  explicit Session(Options options);
  Status Initialize();
  Strategy BuildStrategy() const;

  Options options_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
  ActorSystem system_;
  ClientPlaceTree tree_;
  std::vector<LoaderPartition> partitions_;
  std::vector<std::shared_ptr<SourceLoader>> loaders_;
  std::vector<std::shared_ptr<SourceLoader>> shadows_;
  std::vector<std::shared_ptr<DataConstructor>> constructors_;
  std::shared_ptr<Planner> planner_;
  std::unique_ptr<FaultToleranceManager> ft_;
  int64_t next_step_ = 0;
  StepStats last_stats_;
};

}  // namespace msd

#endif  // SRC_API_SESSION_H_
