// msd::Session — the public entry point, redesigned around streaming clients.
//
// A Session materializes a synthetic (or caller-provided) corpus into the
// object store, auto-partitions sources into Source Loader actors, deploys
// one Data Constructor per DP group plus a central Planner, and then serves
// every training rank a continuous stream of batches: an internal prefetch
// pipeline (src/api/prefetch_pipeline.h) drives plan -> pop -> build for
// steps N .. N+depth-1 while ranks consume step N, so on the hot path a
// rank's pull is a prefetch hit — the loader disappears from step time.
//
//   auto session = msd::SessionBuilder()
//                      .WithCorpus(msd::MakeCoyo700m())
//                      .WithMesh({.dp = 2, .pp = 1, .cp = 2, .tp = 2})
//                      .WithPrefetchDepth(2)
//                      .Build()
//                      .value();
//   msd::DataClient* client = session->client(rank).value();   // per rank
//   msd::RankBatch batch = client->NextBatch().value();        // blocking pull
//   auto future = client->NextBatchAsync();                    // overlap compute
//
// Steps are retired by refcount: once all dp*pp*cp*tp ranks have fetched a
// step, its resident data is released and the pipeline moves the window
// forward (bounded by the prefetch depth — natural backpressure if training
// consumes slower than the loader produces). Reshard() and
// KillAndRecoverLoader() drain the pipeline first and rebuild (not discard)
// any prefetched steps, so elasticity and failure recovery never race
// in-flight work.
//
// The pre-streaming lockstep API survives as deprecated shims implemented on
// top of the pipeline — AdvanceStep() waits for the next step to be produced
// and GetBatch(rank) fetches a view of it. Existing call sites keep working
// and serve byte-identical batches; new code should use client(rank).
//
// All components run as actors on an in-process ActorSystem; the flow follows
// the paper's pull model (client -> Data Constructor -> Planner -> Source
// Loaders -> storage).
#ifndef SRC_API_SESSION_H_
#define SRC_API_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/api/data_client.h"
#include "src/api/prefetch_pipeline.h"
#include "src/checkpoint/checkpoint.h"
#include "src/checkpoint/state_journal.h"
#include "src/constructor/data_constructor.h"
#include "src/data/source_spec.h"
#include "src/ft/fault_tolerance.h"
#include "src/ft/watchdog.h"
#include "src/io/block_cache.h"
#include "src/io/fault_injecting_store.h"
#include "src/io/io_scheduler.h"
#include "src/io/latency_store.h"
#include "src/loader/source_loader.h"
#include "src/mesh/client_place_tree.h"
#include "src/planner/autoscaler.h"
#include "src/planner/planner.h"
#include "src/planner/strategies.h"
#include "src/storage/object_store.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace msd {

class SharedIoPlane;

class Session {
 public:
  enum class StrategyKind { kVanilla, kBackboneBalance, kHybridBalance };

  struct Options {
    CorpusSpec corpus;
    ParallelismSpec spec;
    int32_t num_microbatches = 4;
    int64_t samples_per_step = 32;
    int32_t max_seq_len = 4096;
    StrategyKind strategy = StrategyKind::kBackboneBalance;
    ModelConfig backbone;                        // defaults to Llama12B()
    ModelConfig encoder;                         // defaults to ViT1B()
    std::shared_ptr<const MixSchedule> schedule; // defaults to uniform static
    // Dynamic mixture schedule (src/plan/mixture_schedule.h): piecewise
    // curriculum phases with temperature-scaled weights, per-step multi-scale
    // picks, and the client-fed re-weighting hook (Session::UpdateMixture).
    // When set it *becomes* `schedule` (setting both is an error) and the
    // checkpoint plane commits/restores its override map, so a resume
    // continues mid-phase byte-identically.
    std::shared_ptr<MixtureSchedule> mixture_schedule;
    // Metadata-driven decode bound (multi-scale batching): stop pixel decode
    // past max_seq_len patches — a packed segment can never consume more.
    // Byte-stream-affecting (part of the checkpoint fingerprint).
    bool bound_pixel_decode = false;
    BalanceMethod balance_method = BalanceMethod::kGreedy;
    uint64_t seed = 2026;
    int32_t loader_workers = 2;
    bool enable_fault_tolerance = false;
    int64_t loader_snapshot_interval = 8;
    // Rows materialized per source file (kept small for fast startup).
    int64_t rows_per_file_override = 0;
    // Transformation reordering (Sec. 6.2): ship compressed image bytes from
    // loaders and decode at the Data Constructor.
    bool defer_image_decode = false;
    // Arena-backed row-group decode (src/data/payload_arena.h): loaders
    // allocate each group's Samples as one shared block and freeze decoded
    // payloads as per-shard slabs — O(1) allocations per group instead of
    // per row, freed as a unit when the group's last sample retires. The
    // byte stream is identical with it off (the legacy per-row path).
    bool arena_decode = true;
    // Steps the pipeline works ahead of consumption (>= 2 hides the data
    // plane behind training compute). 0 = fully synchronous lockstep
    // production — the baseline bench_pipeline_throughput measures against.
    int32_t prefetch_depth = 2;
    // Durable resume (src/checkpoint/): directory of a checkpoint written by
    // Checkpoint(). The corpus/seed/step-shape options must match the
    // checkpointed job (validated via fingerprint); the mesh and prefetch
    // depth may differ — that is the elastic part. Empty = fresh start.
    std::string resume_dir;
    // When set, every GCS state write (plan journal, FT loader snapshots)
    // also lands atomically in a disk-backed ObjectStore under this
    // directory, so the journal survives the process even between explicit
    // Checkpoint() calls. Empty = in-memory GCS only.
    std::string gcs_spill_dir;
    // Records a per-step rewind point (planner cursor + loader snapshots,
    // one fanned-out actor round-trip per produced step) so Checkpoint()
    // can commit at the consumption frontier. Disable for jobs that will
    // never checkpoint and want the producer path at its leanest;
    // Checkpoint() then fails with FailedPrecondition.
    bool enable_checkpoint_journal = true;
    // ---- Remote-storage I/O subsystem (src/io/) ----
    // Shared block-cache budget for loader reads; > 0 routes every loader
    // read (footers + row groups) through a sharded, checksummed LRU with
    // request coalescing. 0 = legacy direct whole-blob reads.
    int64_t block_cache_bytes = 0;
    // Optional disk tier: blocks evicted from the memory cache spill to a
    // disk-backed ObjectStore under this directory. Empty = no spill.
    std::string cache_spill_dir;
    // Row groups each loader prefetches past its read cursor (needs
    // block_cache_bytes > 0). 0 = no read-ahead.
    int32_t read_ahead_groups = 0;
    // Simulated remote storage: > 0 wraps the corpus store in a
    // LatencyInjectingStore charging this many microseconds per Get.
    SimTime storage_get_latency = 0;
    // Transfer rate for the latency model; 0 = sim/network default.
    double storage_bandwidth_bytes_per_sec = 0;
    // MSDF row-group target size for the materialized corpus; 0 = the
    // synthetic default (4 MiB). Smaller groups = more Gets per step —
    // the knob bench_io_cache turns to make storage latency bite.
    int64_t row_group_bytes = 0;
    // ---- Storage chaos plane (src/io/fault_injecting_store.h) ----
    // Deterministic storage fault injection: wraps the loader-visible store
    // outside the latency decorator — fault(latency(base)) — so an injected
    // timeout still pays the latency of the Get it interrupted. Requires the
    // block cache: the retry machinery under test lives in the ranged-read
    // path (IoScheduler), which only engages with a cache.
    FaultSchedule storage_faults;
    // Retry budget + exponential backoff with deterministic jitter for
    // failed backing Gets (max_attempts = 1 keeps the legacy fail-fast).
    IoScheduler::RetryPolicy io_retry;
    // Hedged duplicate Gets once a primary outlives the latency quantile.
    IoScheduler::HedgePolicy io_hedge;
    // Graceful mixture degradation: after this many consecutive failed
    // metadata gathers on one loader the planner quarantines it and
    // deterministically renormalizes the mixture over the survivors instead
    // of failing the step. 0 = legacy: any failed gather fails the plan.
    int32_t quarantine_after_failures = 0;
    // Steps between re-admission probes of a quarantined source; a healthy
    // probe re-admits it. <= 0 disables re-admission.
    int64_t quarantine_probe_interval = 16;
    // Produce-round retry budget for transient failures (Unavailable,
    // DeadlineExceeded): a failed plan/pop round is re-run with backoff
    // instead of halting the stream. 1 = legacy halt-on-first-error.
    // Auto-raised above quarantine_after_failures when quarantine is on, so
    // production survives long enough for the quarantine to kick in.
    int32_t produce_retry_attempts = 1;
    // Watchdog (src/ft/watchdog.h): scan for stale loader heartbeats at
    // least this often, promoting shadows of loaders that went silent
    // without surfacing an error. Driven from the producer thread between
    // steps and between produce retry attempts. 0 = no watchdog. Requires
    // fault tolerance (shadows to promote) and prefetch_depth >= 1.
    int64_t watchdog_interval_ms = 0;
    // Heartbeat age past which the watchdog declares a loader dead.
    int64_t watchdog_heartbeat_timeout_ms = 5000;
    // Overrides the planner's per-gather RPC timeout; 0 = planner default.
    int64_t loader_rpc_timeout_ms = 0;
    // ---- Periodic auto-checkpoint ----
    // Every `auto_checkpoint_every` produced steps the session checkpoints
    // into `auto_checkpoint_dir` (piggybacking on the per-step rewind ring;
    // requires enable_checkpoint_journal and prefetch_depth >= 1).
    std::string auto_checkpoint_dir;
    int64_t auto_checkpoint_every = 0;
    // Retention for auto-checkpoints: keep the newest N ckpt-* generations
    // (0 = keep all). Applied after each successful publish.
    int32_t checkpoint_keep_generations = 0;
    // ---- Multi-tenant service binding (src/service/) ----
    // When set, this session runs as one tenant of a shared I/O plane: the
    // corpus is materialized (or deduped) into the plane's store, loader
    // reads go through the plane's cache + fair-share scheduler tagged with
    // `io_tenant`, and durable GCS state lands in the plane's store under
    // "gcs/<gcs_namespace>/". Mutually exclusive with the per-session I/O
    // options above (block_cache_bytes, cache_spill_dir, storage latency,
    // storage_faults, gcs_spill_dir) — the plane provides all of that. Not
    // owned; must outlive the session. Normally installed by DataService.
    SharedIoPlane* shared_plane = nullptr;
    // Tenant id on the shared plane (from SharedIoPlane::AddTenant).
    IoTenantId io_tenant = kDefaultIoTenant;
    // Namespace for durable GCS state on the shared plane ("gcs/<ns>/").
    // Empty with a shared plane = the bare "gcs/" prefix (single tenant).
    std::string gcs_namespace;
    // ---- Telemetry (src/telemetry/) ----
    // Master switch for the metrics registry + step tracer. On by default —
    // the hot-path cost is a handful of relaxed atomics per step (the
    // BENCH_telemetry.json gate holds it under 3% of tokens/s). A session
    // bound to a shared plane uses the PLANE's registry/tracer (so operator
    // snapshots stay cross-tenant consistent); turning this off there only
    // stops the session registering its own pipeline/quarantine series.
    bool telemetry_enabled = true;
    // Spans retained in the step tracer's in-memory ring before the oldest
    // are overwritten. 0 = no tracing (metrics stay on). Ignored with a
    // shared plane — the plane's ring (and its sizing knob) is used instead.
    int64_t trace_ring_spans = 4096;
    // Health monitor (src/telemetry/health.h): per-step stall attribution,
    // SLO anomaly detection, and the flight recorder. Strictly read-side —
    // delivered batches are byte-identical with it on or off. Requires
    // telemetry + tracing + prefetch_depth >= 1 when enabled.
    HealthOptions health;
  };

  // Per-step observability snapshot: planner quality, pipeline progress,
  // io-subsystem counters, and payload-plane allocation/copy accounting.
  // The io/payload fields are views over the same consistent cuts the
  // telemetry registry exports (src/telemetry/bridge.h), so these numbers
  // and `DataService::MetricsSnapshot()` can never disagree. On a shared
  // plane the io counters are this session's tenant-attributed slice.
  struct StepStats {
    /// Step index these stats describe.
    int64_t step = 0;
    /// Max/mean load across DP buckets for this step's plan (1.0 = perfect).
    double dp_imbalance = 1.0;
    /// Samples the plan assigned across all buckets.
    size_t samples = 0;
    /// Wall time the Planner spent computing this step's plan.
    double plan_compute_ms = 0.0;
    /// Configured build-ahead window (SessionBuilder::WithPrefetchDepth).
    int32_t prefetch_depth = 0;
    /// Produced-but-unretired steps resident in the pipeline right now.
    size_t prefetch_queue_depth = 0;
    /// Cumulative rank pulls served without waiting (the hot-path case).
    int64_t prefetch_hits = 0;
    /// Cumulative rank pulls that blocked on an unfinished build.
    int64_t prefetch_stalls = 0;
    /// Plan+pop+build wall time of this step on the producer thread.
    double build_ahead_ms = 0.0;
    /// Per-rank blocked-pull histogram (count + total wait), indexed by rank;
    /// empty before any streaming pull. Localizes which ranks outrun builds.
    std::vector<PrefetchPipeline::RankStall> rank_stalls;
    /// Cumulative block-cache hits — memory-tier, spill, and (on a shared
    /// plane) cross-tenant dedup hits alike (zero when src/io/ is disabled).
    int64_t cache_hits = 0;
    /// Cumulative block-cache misses (the checksum path drops corrupt blocks
    /// and recounts the re-read as a miss, so hits + misses == lookups).
    int64_t cache_misses = 0;
    /// Cumulative block-cache evictions (memory tier; evicted blocks may
    /// live on in the disk spill tier and return as spill hits above).
    int64_t cache_evictions = 0;
    /// Reads that coalesced onto an already-in-flight backing Get.
    int64_t io_coalesced = 0;
    /// Read-ahead prefetch fetches issued by the loaders.
    int64_t readahead_issued = 0;
    /// Backing Gets the (latency-injecting) store actually served. On a
    /// shared plane this is the plane-wide count: the backing store has no
    /// tenant dimension (coalescing merges tenants' reads into one Get).
    int64_t storage_gets = 0;
    /// Cumulative token bytes frozen into immutable buffers (payload plane).
    int64_t token_bytes_frozen = 0;
    /// Cumulative pixel bytes frozen into immutable buffers. With arena
    /// decode this grows by whole row-group slabs, not per sample.
    int64_t pixel_bytes_frozen = 0;
    /// Cumulative bytes explicitly copied OUT of payload views (ToVector).
    /// Zero on the hot path: the data plane serves aliases, never copies.
    int64_t payload_copy_bytes = 0;
    /// Row-group arena slabs frozen so far (payload_arena.h). The allocator
    /// win is rows-per-group / slabs-per-group buffers saved.
    int64_t arena_slabs_frozen = 0;
    /// Backing Gets re-issued after transient failures (retry layer).
    int64_t io_retries = 0;
    /// Hedged duplicate Gets launched for slow primaries.
    int64_t io_hedges = 0;
    /// Loaders currently quarantined by the planner (mixture degraded).
    int64_t sources_quarantined = 0;
  };

  // Snapshot of the remote-storage I/O subsystem's counters.
  struct IoStats {
    /// True when the block cache + io scheduler are active for this session.
    bool enabled = false;
    /// True when the counters come from a shared multi-tenant plane; the
    /// aggregate views then include other tenants' traffic — the per-tenant
    /// views below isolate this session's share.
    bool shared = false;
    /// Block-cache counters: lookups/hits/misses/insertions/evictions, the
    /// disk-spill tier (writes + hits), checksum corruption drops, and — on
    /// a shared plane — cross-tenant dedup hits and resident bytes.
    BlockCache::Stats cache;
    /// Scheduler counters: the request ladder (requests = cache hits +
    /// coalesced + issued Gets), prefetch issues, the retry ladder
    /// (retries / successes / exhausted / failed), hedges launched and won,
    /// abandoned reads, and invalidations.
    IoScheduler::Stats scheduler;
    /// This session's tenant-attributed slice of the cache counters (equals
    /// `cache` for an owned, single-tenant plane).
    BlockCache::Stats cache_tenant;
    /// This session's tenant-attributed slice of the scheduler counters.
    IoScheduler::Stats scheduler_tenant;
    /// Backing Gets observed by the LatencyInjectingStore (0 without one).
    int64_t storage_gets = 0;
    /// Payload bytes the LatencyInjectingStore served (0 without one).
    int64_t storage_bytes_served = 0;
    /// Chaos-plane counters (all zero without WithStorageFaults etc.).
    int64_t faults_injected = 0;       // transient failures the store injected
    int64_t corruptions_injected = 0;  // bit-flips the store injected
    int64_t brownout_failures = 0;     // Gets failed by an engaged brownout
    int64_t sources_quarantined = 0;   // loaders currently quarantined
    int64_t watchdog_detections = 0;   // stale-heartbeat detections so far
  };

  static Result<std::unique_ptr<Session>> Create(Options options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Streaming handle for `rank`. Owned by the Session; valid for its
  // lifetime. One consumer per rank (handles for different ranks may be
  // driven from different threads — that is the intended use).
  Result<DataClient*> client(int32_t rank);

  // Deprecated lockstep shim: blocks until the next step is produced by the
  // pipeline (usually a prefetch hit) and publishes its stats. Prefer
  // client(rank)->NextBatch(), which needs no global step driver.
  Status AdvanceStep();

  // Deprecated lockstep shim: batch view for `rank` at the most recently
  // advanced step. Does not advance the rank's stream or retire steps.
  Result<RankBatch> GetBatch(int32_t rank);

  // Injects a loader failure and recovers via shadow promotion (requires
  // enable_fault_tolerance). Drains the prefetch pipeline first so no
  // in-flight pop can race the kill. Returns the promoted loader's name.
  Result<std::string> KillAndRecoverLoader(size_t loader_index);

  // Elastic resharding (Sec. 6.1): adopts a new parallelism layout on the
  // fly. The DP degree must be unchanged (Data Constructors map 1:1 to DP
  // groups); CP/PP/TP may change freely. The pipeline is drained and every
  // prefetched step is rebuilt against the new mesh from its retained pop
  // slices — no samples are re-popped and none are dropped.
  Status Reshard(const ParallelismSpec& new_spec);

  // Durable checkpoint (src/checkpoint/): commits the data-plane position at
  // the pipeline's retirement frontier into `dir` on disk — planner RNG and
  // plan cursor, every loader's read-state, the journaled in-flight plans,
  // and the per-rank *delivered* cursors — with two-phase staging, so a
  // crash mid-save never corrupts the previous checkpoint. The pipeline is
  // drained during the save and resumes after. Returns the published id.
  // Deprecated-shim caveat: AdvanceStep() IS the shim's consumption point,
  // so a checkpoint taken between AdvanceStep() and the GetBatch() calls
  // commits past that step (streaming DataClients have exact per-rank
  // delivery tracking and no such window).
  // A dead process resumes via SessionBuilder::ResumeFrom(dir), on the same
  // mesh (byte-identical continuation) or a different dp/pp/cp/tp mesh and
  // prefetch depth (elastic resume: in-flight plans replayed against the new
  // mesh when the DP degree is unchanged, deterministically replanned from
  // the commit frontier when it is not).
  Result<std::string> Checkpoint(const std::string& dir,
                                 CheckpointWriter::Options writer_options = {});

  int64_t current_step() const { return next_step_ - 1; }
  const StepStats& last_stats() const { return last_stats_; }
  // Streaming observability: stats of `step`, blocking until it is produced.
  // Call before the step is fully consumed (it retires afterwards).
  Result<StepStats> StepStatsFor(int64_t step);
  // Live pipeline counters (prefetch hits/stalls, queue depth, retirement).
  PrefetchPipeline::Stats pipeline_stats() const;
  // Remote-storage I/O counters (cache, scheduler, backing store, chaos
  // plane). Non-const: the quarantine count is gathered from the planner.
  // The aggregate and tenant slices come from one locked pass each
  // (SnapshotAll), so on a shared plane the tenant slice is exactly the
  // session's share of the aggregate even while neighbours stream.
  IoStats io_stats();
  // Telemetry (src/telemetry/): the registry this session's subsystems
  // export into — session-owned, or the shared plane's when bound to one.
  // Null when telemetry is disabled.
  MetricsRegistry* metrics() { return metrics_view_; }
  // The step tracer capturing plan/pop/build/fetch/stall/io spans. Null
  // when tracing is off (trace_ring_spans = 0 or telemetry disabled).
  StepTracer* tracer() { return tracer_view_; }
  // The health monitor (WithHealthMonitor): stall attribution, anomaly
  // detection, flight recorder. Null when not enabled.
  HealthMonitor* health() { return health_.get(); }
  // The latency-injecting backing store decorator (WithRemoteStorage), for
  // benches that script mid-stream brownouts via set_get_latency. Null
  // without one (including shared-plane sessions — use the plane's).
  LatencyInjectingStore* remote_store() { return remote_store_.get(); }
  // Writes the retained trace ring as Chrome trace-event JSON (load in
  // chrome://tracing or ui.perfetto.dev). Fails when tracing is off.
  Status DumpTrace(const std::string& path);
  // Loaders the planner currently holds in quarantine
  // (loader_id -> step the quarantine started at). Empty when healthy.
  std::map<int32_t, int64_t> QuarantinedLoaders();
  // Client-fed mixture re-weighting (requires WithMixtureSchedule): commits
  // an override that takes effect at `effective_step` (-1 = the next step the
  // planner has not yet planned). Overrides are checkpointed with the planner
  // state and replayed on resume; committing at an already-planned step is an
  // error (it would fork the stream). Also reachable per rank via
  // DataClient::UpdateMixture.
  Status UpdateMixture(int64_t effective_step, std::vector<double> weights);
  // Last planned step's mixture view: phase, scale, and the effective
  // (quarantine-masked, temperature-scaled) per-source weights. step = -1
  // before the first plan or without WithMixtureSchedule.
  Planner::MixtureStatus LastMixtureStatus();
  // The fault-injecting store decorator, for tests/benches that script
  // brownouts mid-stream: the session-owned one (WithStorageFaults) or the
  // tenant's private route on a shared plane. Null without either.
  FaultInjectingStore* fault_store();
  // The heartbeat watchdog. Null without WithWatchdog.
  Watchdog* watchdog() { return watchdog_.get(); }
  // Test/tooling hook: the plan and pop slices of a live (unretired) step,
  // e.g. to replay the step through ReferenceDataPlane. Slice aliases only.
  Result<PrefetchPipeline::Capture> CaptureStep(int64_t step);
  // Test/tooling hook: steps with resident StepData per Data Constructor
  // (flushes each constructor's mailbox — pending releases land first).
  std::vector<std::vector<int64_t>> ConstructorResidentSteps();

  const ClientPlaceTree& tree() const { return tree_; }
  const MemoryAccountant& memory() const { return memory_; }
  const std::vector<LoaderPartition>& partitions() const { return partitions_; }
  size_t num_loaders() const { return loaders_.size(); }
  ActorSystem& actor_system() { return system_; }

 private:
  explicit Session(Options options);
  Status Initialize();
  Strategy BuildStrategy() const;
  // Fingerprint of the options that must match across checkpoint/resume.
  CheckpointFingerprint ComputeFingerprint() const;
  // Applies a loaded checkpoint during Initialize (rewinds loaders/planner,
  // seeds the FT frontier and the plan journal).
  Status ApplyResumeState();

  // Copies the cumulative io-subsystem counters into `stats`. Non-const:
  // the quarantine count is an Ask round-trip to the planner actor.
  void FillIoCounters(StepStats* stats);
  // Health-monitor tick, driven from the producer thread after each produced
  // step (via on_produced_meta, which fires after the on_produced chain, so
  // it observes the post-watchdog state): feeds the step's signals to the
  // monitor. Takes the meta captured under the pipeline lock — a consumer
  // retiring the step before the hooks run must not drop the observation.
  void HealthTick(const PrefetchPipeline::StepMeta& meta);
  // Watchdog tick, driven from the producer thread between steps and between
  // produce retry attempts: rate-limits to watchdog_interval_ms, scans the
  // GCS for stale loader heartbeats, and promotes + rebinds shadows of dead
  // loaders. Skips the scan when another control operation is in progress.
  void MaybeRunWatchdog();
  // Copies the process-wide payload-plane freeze/copy counters into `stats`.
  static void FillPayloadCounters(StepStats* stats);

  // Silent-hang recovery mid-production: a loader that accepted a message but
  // never answered within the RPC deadline is promoted out on the spot and the
  // replacement returned, so the producer can re-issue the request instead of
  // blocking forever (the periodic scan can't help here — it only runs between
  // steps, and production never finishes while a get() hangs).
  Result<SourceLoader*> PromoteHungLoader(int32_t loader_id, int64_t step, const char* what);
  // Pop-path wrapper: promote, then re-issue the identical pop. Safe because
  // the shadow's buffer mirrors every completed step's pops, and this step's
  // hung pop never executed on either replica.
  Result<SampleSlice> RecoverHungPop(int32_t loader_id, int64_t step,
                                     const std::vector<uint64_t>& ids);
  // Producer callbacks wired into the prefetch pipeline.
  Result<ProducedStep> ProduceStep(int64_t step);
  Status BuildConstructors(const LoadingPlan& plan,
                           const std::vector<std::vector<SampleSlice>>& slices_per_dp);
  Result<RankBatch> FetchFromConstructor(int32_t rank, int64_t step);
  void ReleaseStepOnConstructors(int64_t step);

  Options options_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
  // Telemetry plane (src/telemetry/). Declared before the io members so the
  // scheduler/pipeline holding a tracer pointer are destroyed first.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<StepTracer> tracer_;
  // The registry/tracer actually in use: the owned ones above, or the shared
  // plane's (non-owning) when options_.shared_plane is set.
  MetricsRegistry* metrics_view_ = nullptr;
  StepTracer* tracer_view_ = nullptr;
  int64_t metrics_collector_ = -1;  // AddCollector handle (-1 = none)
  // Producer-path instruments (owned by the registry; cached pointers).
  Histogram* plan_ms_hist_ = nullptr;
  Histogram* produce_ms_hist_ = nullptr;
  // Diagnosis plane (declared after the registry/tracer it reads; the
  // pipeline is stopped in ~Session before members die, so no health tick
  // can race destruction).
  std::unique_ptr<HealthMonitor> health_;
  // Remote-storage I/O subsystem (src/io/). Declared before system_ so the
  // loaders (actors) holding pointers die first.
  std::unique_ptr<LatencyInjectingStore> remote_store_;  // latency decorator
  std::unique_ptr<FaultInjectingStore> fault_store_;     // chaos decorator
  std::unique_ptr<ObjectStore> cache_spill_store_;       // disk spill tier
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<IoScheduler> io_;
  // The cache/scheduler the loaders actually use: the owned ones above, or a
  // shared plane's (non-owning) when options_.shared_plane is set.
  BlockCache* cache_view_ = nullptr;
  IoScheduler* io_view_ = nullptr;
  // Disk-backed write-through target for the GCS (gcs_spill_dir option).
  // Declared before system_ so it outlives the Gcs holding a pointer to it.
  std::unique_ptr<ObjectStore> gcs_spill_;
  ActorSystem system_;
  ClientPlaceTree tree_;
  std::vector<LoaderPartition> partitions_;
  std::vector<std::shared_ptr<SourceLoader>> loaders_;
  std::vector<std::shared_ptr<SourceLoader>> shadows_;
  std::vector<std::shared_ptr<DataConstructor>> constructors_;
  std::shared_ptr<Planner> planner_;
  std::unique_ptr<FaultToleranceManager> ft_;
  std::unique_ptr<Watchdog> watchdog_;
  // Last watchdog scan time (steady-clock epoch ms). Producer thread only.
  int64_t last_watchdog_scan_ms_ = 0;
  std::unique_ptr<PrefetchPipeline> pipeline_;
  // Per-step rewind points feeding Checkpoint(); spans the build-ahead window.
  std::unique_ptr<StepStateJournal> state_journal_;
  // Loaded checkpoint when this session was built via ResumeFrom.
  std::unique_ptr<CheckpointState> resume_;
  int64_t start_step_ = 0;  // first step this session produces (0 unless resumed)
  // Serializes control operations (Checkpoint — user-called or the periodic
  // auto-checkpoint firing on the producer thread — Reshard, loader
  // recovery) so their pause/resume brackets never interleave.
  std::mutex control_mu_;
  std::mutex clients_mu_;
  std::unordered_map<int32_t, std::unique_ptr<DataClient>> clients_;
  int64_t next_step_ = 0;  // deprecated-shim cursor (AdvanceStep/GetBatch)
  StepStats last_stats_;
};

// Fluent construction path for the streaming API. Every setter mirrors one
// Session::Options field; unset fields keep their defaults.
//
//   auto session = msd::SessionBuilder()
//                      .WithCorpus(corpus)
//                      .WithMesh(spec)
//                      .WithSamplesPerStep(16)
//                      .WithFaultTolerance()
//                      .Build();
class SessionBuilder {
 public:
  SessionBuilder() = default;

  /// Corpus to materialize into the object store (presets: MakeCoyo700m,
  /// MakeNavitData, MakeTextCorpus — or hand-built SourceSpecs).
  SessionBuilder& WithCorpus(CorpusSpec corpus);
  /// Parallelism mesh dp×pp×cp×tp; one DataClient per rank of it.
  SessionBuilder& WithMesh(const ParallelismSpec& spec);
  /// Microbatches per step (gradient-accumulation bins the plan fills).
  SessionBuilder& WithMicrobatches(int32_t num_microbatches);
  /// Samples the Planner assigns per step across all buckets.
  SessionBuilder& WithSamplesPerStep(int64_t samples_per_step);
  /// Packing bound: max backbone tokens per packed sequence.
  SessionBuilder& WithMaxSeqLen(int32_t max_seq_len);
  /// Orchestration strategy (vanilla / backbone-balance / hybrid-balance).
  SessionBuilder& WithStrategy(Session::StrategyKind kind);
  /// Backbone model for the cost-model balancers (default Llama12B()).
  SessionBuilder& WithBackbone(ModelConfig backbone);
  /// Vision encoder for the encoder subplan (default ViT1B()).
  SessionBuilder& WithEncoder(ModelConfig encoder);
  /// Source-mixing schedule (default: uniform static weights).
  SessionBuilder& WithSchedule(std::shared_ptr<const MixSchedule> schedule);
  /// Dynamic mixture schedule: curriculum phases + temperature + multi-scale
  /// picks + the UpdateMixture override hook, checkpointed/resumed mid-phase.
  /// Mutually exclusive with WithSchedule.
  SessionBuilder& WithMixtureSchedule(std::shared_ptr<MixtureSchedule> schedule);
  /// Stops pixel decode past max_seq_len patches (metadata-driven bound).
  SessionBuilder& WithBoundedPixelDecode(bool enabled = true);
  /// Balancer algorithm for the balance strategies (default greedy).
  SessionBuilder& WithBalanceMethod(BalanceMethod method);
  /// Seed for the Planner's RNG (the whole stream is deterministic in it).
  SessionBuilder& WithSeed(uint64_t seed);
  /// Transform worker threads per Source Loader actor.
  SessionBuilder& WithLoaderWorkers(int32_t workers);
  /// Spawns a hot-standby shadow per loader and enables KillAndRecoverLoader.
  SessionBuilder& WithFaultTolerance(bool enabled = true);
  /// Steps between differential loader snapshots (fault tolerance).
  SessionBuilder& WithSnapshotInterval(int64_t steps);
  /// Overrides rows materialized per source file (small = fast startup).
  SessionBuilder& WithRowsPerFile(int64_t rows);
  /// Ships compressed image bytes from loaders; constructors decode
  /// (transformation reordering, Sec. 6.2).
  SessionBuilder& WithDeferredImageDecode(bool enabled = true);
  /// Arena-backed row-group decode in the loaders: one shared Sample block +
  /// per-shard payload slabs per group instead of per-row allocations.
  /// Byte-identical output; on by default.
  SessionBuilder& WithArenaDecode(bool enabled = true);
  /// Steps the pipeline builds ahead of consumption (>= 2 hides the data
  /// plane behind training compute; 0 = lockstep baseline).
  SessionBuilder& WithPrefetchDepth(int32_t depth);
  /// Resumes the data stream from a durable checkpoint written by
  /// Session::Checkpoint(dir). Supply the same corpus/seed/step-shape options
  /// as the checkpointed job; the mesh (WithMesh) and prefetch depth may
  /// differ — elastic resume replays or replans the stream accordingly.
  SessionBuilder& ResumeFrom(std::string dir);
  /// Spills every GCS state write (plan journal, FT snapshots) to disk.
  SessionBuilder& WithDurableGcs(std::string dir);
  /// Disables the per-step rewind recording (and with it Checkpoint()).
  SessionBuilder& WithCheckpointJournal(bool enabled = true);
  /// Routes loader reads through a shared block cache of this many bytes.
  SessionBuilder& WithBlockCache(int64_t bytes);
  /// Disk tier for blocks evicted from the memory cache.
  SessionBuilder& WithCacheSpill(std::string dir);
  /// Prefetches `groups` row groups past each loader's cursor.
  SessionBuilder& WithReadAhead(int32_t groups);
  /// Simulates remote storage: every Get pays `get_latency` microseconds plus
  /// size/bandwidth (0 bandwidth = the sim/network default).
  SessionBuilder& WithRemoteStorage(SimTime get_latency,
                                    double bandwidth_bytes_per_sec = 0);
  /// MSDF row-group target size for the materialized corpus.
  SessionBuilder& WithRowGroupBytes(int64_t bytes);
  /// Deterministic storage fault injection (requires WithBlockCache).
  SessionBuilder& WithStorageFaults(FaultSchedule schedule);
  /// Retry/backoff policy for failed backing Gets.
  SessionBuilder& WithIoRetry(IoScheduler::RetryPolicy policy);
  /// Hedged duplicate Gets for slow primaries.
  SessionBuilder& WithIoHedging(IoScheduler::HedgePolicy policy);
  /// Quarantines a source after `after_failures` consecutive failed gathers,
  /// renormalizing the mixture over the survivors; re-probes every
  /// `probe_interval` steps for re-admission.
  SessionBuilder& WithSourceQuarantine(int32_t after_failures,
                                       int64_t probe_interval = 16);
  /// Produce-round retry budget for transient failures (1 = halt on first).
  SessionBuilder& WithProduceRetries(int32_t attempts);
  /// Heartbeat watchdog: scans every `interval_ms`, promoting shadows of
  /// loaders silent for `heartbeat_timeout_ms` (needs WithFaultTolerance).
  SessionBuilder& WithWatchdog(int64_t interval_ms,
                               int64_t heartbeat_timeout_ms = 5000);
  /// Overrides the planner's per-gather RPC timeout.
  SessionBuilder& WithLoaderRpcTimeout(int64_t timeout_ms);
  /// Checkpoints into `dir` every `every_n_steps` produced steps.
  SessionBuilder& WithAutoCheckpoint(std::string dir, int64_t every_n_steps);
  /// Keeps only the newest `generations` ckpt-* generations after each publish.
  SessionBuilder& WithCheckpointRetention(int32_t generations);
  /// Binds the session to a shared multi-tenant I/O plane as tenant `tenant`
  /// (src/service/): loader reads go through the plane's cache + fair-share
  /// scheduler instead of a session-owned one. Normally set by DataService.
  SessionBuilder& WithSharedIoPlane(SharedIoPlane* plane,
                                    IoTenantId tenant = kDefaultIoTenant);
  /// Namespace for durable GCS state on the shared plane ("gcs/<ns>/").
  SessionBuilder& WithGcsNamespace(std::string ns);
  /// Master switch for the metrics registry + step tracer (on by default).
  SessionBuilder& WithTelemetry(bool enabled = true);
  /// Spans retained in the trace ring (0 = no tracing, metrics stay on).
  SessionBuilder& WithTraceRing(int64_t spans);
  /// Health monitor: per-step stall attribution + SLO anomaly detection +
  /// flight recorder (src/telemetry/health.h). `health.enabled` is forced on.
  SessionBuilder& WithHealthMonitor(HealthOptions health);

  /// Materializes the corpus, spawns the actors, starts the prefetch
  /// pipeline, and returns the ready Session.
  Result<std::unique_ptr<Session>> Build();

 private:
  Session::Options options_;
};

}  // namespace msd

#endif  // SRC_API_SESSION_H_
