#include "src/api/prefetch_pipeline.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace msd {

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

PrefetchPipeline::PrefetchPipeline(Config config, int32_t world_size, ProduceFn produce,
                                   FetchFn fetch, RebuildFn rebuild, ReleaseFn release)
    : config_(config),
      produce_(std::move(produce)),
      fetch_(std::move(fetch)),
      rebuild_(std::move(rebuild)),
      release_(std::move(release)),
      world_size_(world_size),
      cursors_(static_cast<size_t>(world_size), config.start_step),
      inflight_claims_(static_cast<size_t>(world_size), -1),
      claim_fetch_failed_(static_cast<size_t>(world_size), 0),
      next_produce_(config.start_step),
      retire_floor_(config.start_step),
      rank_stalls_(static_cast<size_t>(world_size)),
      window_(static_cast<size_t>(std::max(config.depth, 1))) {
  MSD_CHECK(config_.depth >= 0);
  MSD_CHECK(config_.start_step >= 0);
  MSD_CHECK(world_size_ >= 1);
  MSD_CHECK(produce_ != nullptr && fetch_ != nullptr);
  if (!config_.initial_cursors.empty()) {
    MSD_CHECK(config_.initial_cursors.size() == cursors_.size());
    for (size_t i = 0; i < cursors_.size(); ++i) {
      MSD_CHECK(config_.initial_cursors[i] >= config_.start_step);
      cursors_[i] = config_.initial_cursors[i];
    }
  }
}

PrefetchPipeline::~PrefetchPipeline() { Stop(); }

void PrefetchPipeline::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  running_ = true;
  if (config_.depth > 0) {
    producer_ = std::thread([this] { ProducerLoop(); });
  }
}

void PrefetchPipeline::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    running_ = false;
  }
  window_.Close();
  cv_.notify_all();
  if (producer_.joinable()) {
    producer_.join();
  }
}

void PrefetchPipeline::ProducerLoop() {
  for (;;) {
    // Claim a live-step slot first: this is the backpressure point. The push
    // blocks until retirement frees a slot (or Stop closes the queue). The
    // blocked time is the consumer-stall bucket of stall attribution, so it
    // is spanned — but the step id is only known after production, so the
    // span is recorded late with a back-dated ts.
    const int64_t gate_ts_us = config_.tracer != nullptr ? config_.tracer->NowUs() : 0;
    auto gate_t0 = std::chrono::steady_clock::now();
    if (!window_.Push(0)) {
      return;
    }
    const int64_t gate_dur_us = static_cast<int64_t>(MsSince(gate_t0) * 1000.0);
    int64_t produced_step;
    std::optional<StepMeta> produced_meta;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !running_ || (!paused_ && !halted_.has_value()); });
      if (!running_) {
        return;
      }
      ProduceOne(lock);
      if (!running_) {
        return;  // stopped mid-retry-burst; the step was never produced
      }
      if (halted_.has_value()) {
        // Terminal: waiting consumers observe the stored status. Copy the
        // halt out so the hook runs outside the lock.
        const int64_t halt_step = halted_->first;
        const Status halt_status = halted_->second;
        lock.unlock();
        if (config_.on_halted) {
          config_.on_halted(halt_step, halt_status);
        }
        return;
      }
      produced_step = next_produce_ - 1;
      if (config_.on_produced_meta) {
        // Capture the meta while mu_ is still held: once the lock drops, a
        // fast consumer may pop AND retire this step before the hooks below
        // run, and a post-hoc StepInfo(produced_step) would come back empty.
        Result<StepMeta> meta = StepInfoLocked(produced_step);
        if (meta.ok()) {
          produced_meta = meta.value();
        }
      }
    }
    if (config_.tracer != nullptr) {
      TraceSpan span;
      span.name = "step.gate";
      span.cat = "step";
      span.ts_us = gate_ts_us;
      span.dur_us = gate_dur_us;
      span.tenant = config_.tenant;
      span.step = produced_step;
      config_.tracer->Record(span);
    }
    if (config_.on_produced) {
      // Outside the lock and outside in_produce_: the hook may run control
      // operations (e.g. a periodic checkpoint pausing this pipeline).
      config_.on_produced(produced_step);
    }
    if (config_.on_produced_meta && produced_meta.has_value()) {
      // After on_produced so a health tick here observes the post-checkpoint,
      // post-watchdog state of the step.
      config_.on_produced_meta(*produced_meta);
      produced_meta.reset();
    }
  }
}

void PrefetchPipeline::ProduceOne(std::unique_lock<std::mutex>& lock) {
  const int64_t step = next_produce_;
  const int32_t max_attempts = std::max(1, config_.produce_max_attempts);
  produce_claimed_ = true;
  Result<ProducedStep> produced = Status::Internal("produce never ran");
  double elapsed_ms = 0.0;
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    in_produce_ = true;
    lock.unlock();
    auto t0 = std::chrono::steady_clock::now();
    produced = produce_(step);
    elapsed_ms += MsSince(t0);
    lock.lock();
    in_produce_ = false;
    cv_.notify_all();  // Pause() may be draining in_produce_
    if (produced.ok()) {
      break;
    }
    const StatusCode code = produced.status().code();
    const bool transient =
        code == StatusCode::kUnavailable || code == StatusCode::kDeadlineExceeded;
    if (!transient || attempt + 1 >= max_attempts) {
      break;
    }
    ++stats_.produce_retries;
    // Between attempts: in_produce_ is false and the lock is dropped, so a
    // control operation (checkpoint, watchdog recovery, reshard) can run in
    // the middle of the retry burst — that is the window the on_produce_error
    // hook exists for. The production round stays claimed (produce_claimed_)
    // so a synchronous-mode consumer cannot double-produce the step.
    lock.unlock();
    if (config_.on_produce_error) {
      config_.on_produce_error(step, produced.status());
    }
    int64_t delay_us = config_.produce_retry_base_us;
    for (int32_t i = 0; i < attempt && delay_us < config_.produce_retry_max_us; ++i) {
      delay_us *= 2;
    }
    delay_us = std::min(delay_us, config_.produce_retry_max_us);
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    lock.lock();
    if (!running_) {
      produce_claimed_ = false;
      cv_.notify_all();
      return;  // stopped mid-burst; the step stays unproduced
    }
    cv_.wait(lock, [&] { return !paused_ || !running_; });
    if (!running_) {
      produce_claimed_ = false;
      cv_.notify_all();
      return;
    }
  }
  produce_claimed_ = false;
  if (!produced.ok()) {
    halted_ = std::make_pair(step, produced.status());
  } else {
    Ticket ticket;
    ticket.data = std::move(produced.value());
    ticket.data.build_ahead_ms = elapsed_ms;
    ticket.fetched.assign(static_cast<size_t>(world_size_), 0);
    tickets_.emplace(step, std::move(ticket));
    next_produce_ = step + 1;
    ++stats_.steps_produced;
    stats_.last_build_ahead_ms = elapsed_ms;
  }
  cv_.notify_all();
}

Status PrefetchPipeline::HaltStatusLocked(int64_t step) const {
  const auto& [halt_step, status] = *halted_;
  return Status(status.code(), "prefetch pipeline halted at step " +
                                   std::to_string(halt_step) + " (requested " +
                                   std::to_string(step) + "): " + status.message());
}

Status PrefetchPipeline::WaitProducedLocked(std::unique_lock<std::mutex>& lock, int64_t step,
                                            bool count_stats) {
  if (step < next_produce_) {
    if (count_stats) {
      ++stats_.prefetch_hits;
    }
    return Status::Ok();
  }
  if (halted_.has_value()) {
    return HaltStatusLocked(step);
  }
  if (count_stats) {
    ++stats_.prefetch_stalls;
  }
  if (config_.depth == 0) {
    // Synchronous mode: produce inline on this thread, in step order. Another
    // consumer may already be producing (or a drain may be in effect); wait
    // rather than double-run or race the control operation.
    while (next_produce_ <= step && !halted_.has_value() && running_) {
      if (produce_claimed_ || paused_) {
        // produce_claimed_ (not in_produce_): the owner may be between retry
        // attempts with the callback idle; stepping in would double-produce.
        cv_.wait(lock, [&] { return (!produce_claimed_ && !paused_) || !running_ ||
                                    halted_.has_value() || step < next_produce_; });
      } else {
        ProduceOne(lock);
      }
    }
  } else {
    cv_.wait(lock, [&] { return !running_ || halted_.has_value() || step < next_produce_; });
  }
  if (step < next_produce_) {
    return Status::Ok();
  }
  if (halted_.has_value()) {
    return HaltStatusLocked(step);
  }
  return Status::Unavailable("prefetch pipeline stopped before step " + std::to_string(step));
}

int64_t PrefetchPipeline::ConsumptionFloorLocked() const {
  int64_t floor = std::numeric_limits<int64_t>::max();
  for (int64_t c : cursors_) {
    floor = std::min(floor, c);
  }
  return floor;
}

void PrefetchPipeline::MaybeRetireLocked() {
  const int64_t floor = ConsumptionFloorLocked();
  for (;;) {
    auto it = tickets_.find(retire_floor_);
    if (it == tickets_.end()) {
      break;  // oldest live step not produced yet
    }
    Ticket& ticket = it->second;
    bool fully_fetched = ticket.fetch_count >= world_size_;
    if (!fully_fetched && floor <= retire_floor_) {
      break;
    }
    if (fully_fetched && !ticket.released && release_ != nullptr) {
      release_(retire_floor_);
      ticket.released = true;
      ++stats_.steps_released;
    }
    if (!fully_fetched && !ticket.released && release_ != nullptr) {
      // Floor-retired with fetches still in flight (a claim advances the
      // cursor before its fetch lands). If those in-flight fetches are the
      // only ones missing, remember them: the last one to land releases the
      // step eagerly instead of waiting for the eviction backstop.
      PendingRelease pending;
      pending.awaiting.assign(static_cast<size_t>(world_size_), 0);
      for (size_t rank = 0; rank < inflight_claims_.size() &&
                            rank < static_cast<size_t>(world_size_); ++rank) {
        if (inflight_claims_[rank] == retire_floor_ &&
            (rank >= claim_fetch_failed_.size() || !claim_fetch_failed_[rank]) &&
            (rank >= ticket.fetched.size() || !ticket.fetched[rank])) {
          pending.awaiting[rank] = 1;
          ++pending.remaining;
        }
      }
      if (pending.remaining > 0 &&
          ticket.fetch_count + pending.remaining >= world_size_) {
        pending_release_.emplace(retire_floor_, std::move(pending));
      }
    }
    tickets_.erase(it);
    ++retire_floor_;
    ++stats_.steps_retired;
    if (config_.depth > 0) {
      window_.TryPop();  // return the slot; wakes the blocked producer
    }
  }
}

void PrefetchPipeline::ResolvePendingReleaseLocked(int64_t step, int32_t rank,
                                                   bool fetch_ok) {
  auto it = pending_release_.find(step);
  if (it == pending_release_.end()) {
    return;
  }
  PendingRelease& pending = it->second;
  if (static_cast<size_t>(rank) >= pending.awaiting.size() ||
      !pending.awaiting[static_cast<size_t>(rank)]) {
    return;
  }
  if (!fetch_ok) {
    // This rank never received the step; the eviction backstop takes over.
    pending_release_.erase(it);
    return;
  }
  pending.awaiting[static_cast<size_t>(rank)] = 0;
  if (--pending.remaining == 0) {
    release_(step);
    ++stats_.steps_released;
    pending_release_.erase(it);
  }
}

void PrefetchPipeline::AbandonPendingReleaseForRankLocked(size_t rank) {
  for (auto it = pending_release_.begin(); it != pending_release_.end();) {
    if (rank < it->second.awaiting.size() && it->second.awaiting[rank]) {
      it = pending_release_.erase(it);
    } else {
      ++it;
    }
  }
}

// Runs fetch_ outside the lock, bracketed by active_fetches_ so Pause() can
// wait out in-flight fetches; new fetches block while a drain is in effect.
Result<RankBatch> PrefetchPipeline::GatedFetch(std::unique_lock<std::mutex>& lock,
                                               int32_t rank, int64_t step) {
  cv_.wait(lock, [&] { return !paused_ || !running_; });
  if (!running_) {
    return Status::Unavailable("prefetch pipeline stopped");
  }
  ++active_fetches_;
  lock.unlock();
  Result<RankBatch> batch = [&] {
    ScopedSpan span(config_.tracer, "step.fetch", "step", config_.tenant, step, rank);
    Result<RankBatch> r = fetch_(rank, step);
    span.set_ok(r.ok());
    return r;
  }();
  lock.lock();
  --active_fetches_;
  cv_.notify_all();
  return batch;
}

Result<RankBatch> PrefetchPipeline::NextBatch(int32_t rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (rank < 0 || rank >= world_size_) {
    return Status::InvalidArgument("rank " + std::to_string(rank) + " outside world of " +
                                   std::to_string(world_size_));
  }
  int64_t step = cursors_[static_cast<size_t>(rank)];
  cursors_[static_cast<size_t>(rank)] = step + 1;
  inflight_claims_[static_cast<size_t>(rank)] = step;  // claimed, not yet handed
  claim_fetch_failed_[static_cast<size_t>(rank)] = 0;
  MaybeRetireLocked();  // claiming may raise the consumption floor
  // Per-rank stall accounting: classify before waiting (the wait itself
  // changes next_produce_), measure the blocked time after.
  const bool ready = step < next_produce_;
  auto wait_t0 = std::chrono::steady_clock::now();
  Status produced = WaitProducedLocked(lock, step, /*count_stats=*/true);
  if (static_cast<size_t>(rank) < rank_stalls_.size()) {
    RankStall& stall = rank_stalls_[static_cast<size_t>(rank)];
    ++stall.pulls;
    if (!ready) {
      ++stall.stalls;
      const double waited_ms = MsSince(wait_t0);
      stall.wait_ms += waited_ms;
      if (config_.tracer != nullptr) {
        TraceSpan span;
        span.name = "step.stall";
        span.cat = "step";
        span.dur_us = static_cast<int64_t>(waited_ms * 1000.0);
        span.ts_us = config_.tracer->NowUs() - span.dur_us;
        span.tenant = config_.tenant;
        span.step = step;
        span.rank = rank;
        span.ok = produced.ok();
        config_.tracer->Record(span);
      }
    }
  }
  if (!produced.ok()) {
    return produced;
  }
  Result<RankBatch> batch = GatedFetch(lock, rank, step);
  if (static_cast<size_t>(rank) < inflight_claims_.size() &&
      inflight_claims_[static_cast<size_t>(rank)] == step) {
    if (batch.ok()) {
      inflight_claims_[static_cast<size_t>(rank)] = -1;  // delivered
    } else {
      // Undelivered (the claim stays for frontier()), but no fetch remains
      // in flight — retirement must not register an eager release on it.
      claim_fetch_failed_[static_cast<size_t>(rank)] = 1;
    }
  }
  auto it = tickets_.find(step);
  // Bounds re-check: a shrinking reshard may have resized the fetch bitmap
  // while this rank's fetch was in flight.
  if (it != tickets_.end() && static_cast<size_t>(rank) < it->second.fetched.size() &&
      !it->second.fetched[static_cast<size_t>(rank)]) {
    it->second.fetched[static_cast<size_t>(rank)] = 1;
    ++it->second.fetch_count;
    MaybeRetireLocked();
  } else if (it == tickets_.end()) {
    // The cursor floor retired this step while the fetch was in flight; if
    // that fetch was the last one missing, release the constructor data now.
    ResolvePendingReleaseLocked(step, rank, batch.ok());
  }
  return batch;
}

std::future<Result<RankBatch>> PrefetchPipeline::NextBatchAsync(int32_t rank) {
  // The cursor is claimed inside NextBatch on the async thread; keep one pull
  // outstanding per rank or step claim order becomes nondeterministic.
  return std::async(std::launch::async, [this, rank] { return NextBatch(rank); });
}

Status PrefetchPipeline::WaitProduced(int64_t step) {
  std::unique_lock<std::mutex> lock(mu_);
  // The lockstep shim consumes in unison: every rank lagging behind `step`
  // is fast-forwarded, which retires (frees) all steps before it. Shim
  // delivery is declared, not claimed, so stale streaming claims are voided
  // (and any eager release awaiting them falls back to the backstop).
  for (size_t rank = 0; rank < cursors_.size(); ++rank) {
    if (cursors_[rank] < step) {
      cursors_[rank] = step;
      if (inflight_claims_[rank] >= 0) {
        AbandonPendingReleaseForRankLocked(rank);
        inflight_claims_[rank] = -1;
      }
    }
  }
  MaybeRetireLocked();
  return WaitProducedLocked(lock, step, /*count_stats=*/true);
}

void PrefetchPipeline::MarkShimConsumed(int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t rank = 0; rank < cursors_.size(); ++rank) {
    if (cursors_[rank] < step + 1) {
      cursors_[rank] = step + 1;
      if (inflight_claims_[rank] >= 0) {
        AbandonPendingReleaseForRankLocked(rank);
        inflight_claims_[rank] = -1;
      }
    }
  }
  MaybeRetireLocked();
}

Result<RankBatch> PrefetchPipeline::FetchStep(int32_t rank, int64_t step) {
  // No cursor movement and no refcount: the deprecated GetBatch may fetch a
  // step any number of times (or not at all); constructor eviction bounds it.
  std::unique_lock<std::mutex> lock(mu_);
  return GatedFetch(lock, rank, step);
}

void PrefetchPipeline::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  // Drain both the producer and every consumer fetch: after this, no
  // loader/constructor Ask originating from the pipeline is in flight, and
  // none can start until Resume().
  cv_.wait(lock, [&] { return !in_produce_ && active_fetches_ == 0; });
}

void PrefetchPipeline::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

Status PrefetchPipeline::RebuildLive(int32_t new_world_size) {
  MSD_CHECK(new_world_size >= 1);
  std::unique_lock<std::mutex> lock(mu_);
  MSD_CHECK(paused_ || config_.depth == 0);
  world_size_ = new_world_size;
  // Ranks added by the reshard start at the oldest live step; ranks removed
  // simply drop out of the consumption floor. Pending eager releases are
  // tied to the old mesh's in-flight fetches — abandon them (backstop).
  pending_release_.clear();
  cursors_.resize(static_cast<size_t>(new_world_size), retire_floor_);
  inflight_claims_.resize(static_cast<size_t>(new_world_size), -1);
  claim_fetch_failed_.resize(static_cast<size_t>(new_world_size), 0);
  rank_stalls_.resize(static_cast<size_t>(new_world_size));
  if (rebuild_ == nullptr) {
    return Status::Ok();
  }
  for (auto& [step, ticket] : tickets_) {
    Status rebuilt = rebuild_(ticket.data.plan, ticket.data.slices_per_constructor);
    if (!rebuilt.ok()) {
      return Status(rebuilt.code(), "rebuilding prefetched step " + std::to_string(step) +
                                        " after reshard: " + rebuilt.message());
    }
    // The step's content changed: every rank (old and new) refetches it.
    ticket.fetched.assign(static_cast<size_t>(new_world_size), 0);
    ticket.fetch_count = 0;
    ticket.released = false;
  }
  return Status::Ok();
}

PrefetchPipeline::Stats PrefetchPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.queue_depth = tickets_.size();
  s.rank_stalls = rank_stalls_;
  return s;
}

std::vector<PrefetchPipeline::RankStall> PrefetchPipeline::rank_stalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rank_stalls_;
}

PrefetchPipeline::Frontier PrefetchPipeline::frontier() const {
  std::lock_guard<std::mutex> lock(mu_);
  Frontier f;
  f.commit_step = retire_floor_;
  f.produce_frontier = next_produce_;
  f.cursors = cursors_;
  // A rank parked inside NextBatch claimed its step but never received it
  // (Pause drains in-flight fetches, so the only parked ranks are waiting on
  // production or on the pause gate). Report it at the undelivered step so a
  // resume re-serves the batch instead of skipping it — and hold the commit
  // frontier at or below it: retirement advances on claims, so the retire
  // floor may already have passed a step an about-to-fetch rank never got.
  for (size_t rank = 0; rank < f.cursors.size(); ++rank) {
    if (inflight_claims_[rank] >= 0) {
      f.cursors[rank] = inflight_claims_[rank];
      f.commit_step = std::min(f.commit_step, inflight_claims_[rank]);
    }
  }
  return f;
}

Result<PrefetchPipeline::StepMeta> PrefetchPipeline::StepInfo(int64_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  return StepInfoLocked(step);
}

Result<PrefetchPipeline::StepMeta> PrefetchPipeline::StepInfoLocked(int64_t step) const {
  auto it = tickets_.find(step);
  if (it == tickets_.end()) {
    return Status::NotFound("step " + std::to_string(step) + " is not live in the pipeline");
  }
  StepMeta meta;
  meta.step = step;
  meta.samples = it->second.data.samples;
  meta.tokens = it->second.data.tokens;
  meta.dp_imbalance = it->second.data.dp_imbalance;
  meta.plan_compute_ms = it->second.data.plan_compute_ms;
  meta.build_ahead_ms = it->second.data.build_ahead_ms;
  return meta;
}

Result<PrefetchPipeline::StepMeta> PrefetchPipeline::WaitStepInfo(int64_t step) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Pure observability: never classified as a prefetch hit or stall.
    Status produced = WaitProducedLocked(lock, step, /*count_stats=*/false);
    if (!produced.ok()) {
      return produced;
    }
  }
  return StepInfo(step);
}

Result<PrefetchPipeline::Capture> PrefetchPipeline::CaptureStep(int64_t step) {
  std::unique_lock<std::mutex> lock(mu_);
  if (step < retire_floor_) {
    return Status::FailedPrecondition("step " + std::to_string(step) +
                                      " already retired; capture before consuming it");
  }
  Status produced = WaitProducedLocked(lock, step, /*count_stats=*/false);
  if (!produced.ok()) {
    return produced;
  }
  auto it = tickets_.find(step);
  if (it == tickets_.end()) {
    return Status::NotFound("step " + std::to_string(step) + " retired while capturing");
  }
  Capture capture;
  capture.plan = it->second.data.plan;
  capture.slices_per_constructor = it->second.data.slices_per_constructor;
  return capture;
}

int64_t PrefetchPipeline::cursor(int32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank < 0 || rank >= world_size_) {
    return -1;  // rank dropped by a shrinking reshard; handles must not abort
  }
  return cursors_[static_cast<size_t>(rank)];
}

int32_t PrefetchPipeline::world_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return world_size_;
}

}  // namespace msd
