// PrefetchPipeline: the bounded build-ahead engine behind the streaming
// Session API (the paper's pull model, Sec. 3, made continuous).
//
// A single in-order producer drives plan -> pop -> build for steps
// N .. N+depth-1 while training ranks consume step N. The moving parts:
//
//   - Backpressure: the producer claims a slot from a bounded MpmcQueue
//     before producing a step and retirement returns the slot, so at most
//     `depth` steps are ever live (produced or in flight) ahead of the
//     slowest consumer. `depth == 0` degenerates to fully synchronous
//     production on the consumer's thread (the lockstep baseline).
//   - Per-rank cursors: every rank of the world has a cursor; NextBatch(rank)
//     claims the cursor's step, blocks until it is produced, fetches the
//     rank's view, and advances. The deprecated lockstep shim instead raises
//     every lagging cursor at once via WaitProduced (AdvanceStep).
//   - Refcounted retirement: a step's resources are released once all
//     world-size ranks have fetched their view (constructor StepData is
//     dropped eagerly via the release hook) or once every cursor has moved
//     past it; retirement is strictly in step order so the slot queue and the
//     retained slices stay consistent.
//   - Drain/invalidate: Pause() quiesces the producer (waits out the
//     in-flight step, so no actor Ask can race a loader kill), and
//     RebuildLive() re-runs constructor assembly for every live step from the
//     slices retained at pop time — this is how Reshard() re-targets already
//     prefetched steps to a new mesh instead of racing or discarding them.
//
// Determinism: the producer is strictly sequential in step order and issues
// per-loader pops in the same relative order as the old lockstep loop, so a
// pipelined session serves byte-identical batches to the synchronous shim
// (asserted by tests/pipeline_test.cc against ReferenceDataPlane).
//
// Thread-safety: NextBatch/WaitProduced/FetchStep/stats are safe to call from
// any thread (one consumer per rank; a DataClient itself is not shared).
// Control operations (Pause/Resume/RebuildLive/Stop) must not run
// concurrently with each other — Session serializes them.
#ifndef SRC_API_PREFETCH_PIPELINE_H_
#define SRC_API_PREFETCH_PIPELINE_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/mpmc_queue.h"
#include "src/common/status.h"
#include "src/constructor/data_constructor.h"
#include "src/io/block_cache.h"
#include "src/loader/source_loader.h"
#include "src/plan/dgraph.h"

namespace msd {

class StepTracer;

// One fully produced step. The popped slices are retained (shared_ptr
// aliases, never Sample copies) until retirement so a reshard can rebuild the
// step's constructor data without re-popping loaders.
struct ProducedStep {
  LoadingPlan plan;
  std::vector<std::vector<SampleSlice>> slices_per_constructor;
  size_t samples = 0;
  int64_t tokens = 0;  // total planned tokens across all DP groups
  double dp_imbalance = 1.0;
  double plan_compute_ms = 0.0;
  double build_ahead_ms = 0.0;  // wall time of plan+pop+build for this step
};

class PrefetchPipeline {
 public:
  struct StepMeta;  // defined below; referenced by Config::on_produced_meta

  struct Config {
    // Max steps live (produced or in production) ahead of retirement.
    // 0 = synchronous: steps are produced inline on the consuming thread.
    int32_t depth = 2;
    // First step this pipeline produces/retires (job resume starts mid-
    // stream; a fresh session starts at 0).
    int64_t start_step = 0;
    // Per-rank starting cursors (>= start_step each); empty = all ranks at
    // start_step. A resumed job restores the exact per-rank positions so no
    // rank re-receives or skips a step.
    std::vector<int64_t> initial_cursors;
    // Invoked from the producer thread after each step is produced, outside
    // the pipeline lock and outside in_produce_ — so the callback may run
    // control operations (Session's periodic auto-checkpoint pauses the
    // pipeline from here). Asynchronous-producer mode only (depth >= 1).
    std::function<void(int64_t step)> on_produced;
    // Like on_produced, but handed the step's StepMeta captured UNDER the
    // pipeline lock before any hook runs. A fast consumer can pop and retire
    // the step before the producer thread reaches the hooks, so a post-hoc
    // StepInfo(step) from inside on_produced can fail spuriously; this
    // variant never loses the observation. Fires after on_produced, same
    // thread and constraints. Session's health tick hangs here.
    std::function<void(const StepMeta& meta)> on_produced_meta;
    // Transient-failure resilience: a produce round that fails with a
    // transient status (Unavailable, DeadlineExceeded) is re-run, up to this
    // many total attempts, before the pipeline halts. Production is strictly
    // per-step idempotent-on-failure (the planner's RNG does not advance on a
    // failed gather and loaders defer refill errors), so a retried round
    // produces exactly the step the undisturbed run would have. 1 = legacy
    // halt-on-first-error.
    int32_t produce_max_attempts = 1;
    // Backoff between produce attempts: base * 2^attempt, capped.
    int64_t produce_retry_base_us = 2000;
    int64_t produce_retry_max_us = 200'000;
    // Invoked between produce attempts (outside the lock, outside
    // in_produce_, before the backoff sleep) with the failing step and
    // status. The callback may run control operations — Session uses it to
    // drive the watchdog while production is stuck on a dead loader.
    std::function<void(int64_t step, const Status& error)> on_produce_error;
    // Invoked once, from the producer thread outside the lock, when
    // production halts terminally (retries exhausted or a non-transient
    // error) with the failing step and final status. on_produce_error fires
    // *between* attempts; this fires *after* the last one — the hook for
    // raising a produce-exhausted health event. Asynchronous mode only.
    std::function<void(int64_t step, const Status& error)> on_halted;
    // Telemetry (src/telemetry/trace.h): records step.fetch spans around
    // rank pulls, step.stall spans when a pull blocks on production, and
    // step.gate spans for the producer's blocking wait on a free window
    // slot (consumer backpressure), attributed to `tenant`. Not owned;
    // nullptr = no tracing.
    StepTracer* tracer = nullptr;
    IoTenantId tenant = kDefaultIoTenant;
  };

  // Per-rank stall histogram over the streaming path (NextBatch): how often
  // this rank's pull blocked on production, and for how long in total. A
  // skewed histogram localizes the straggler (slow consumer ranks show zero
  // stalls; the rank that always arrives before the build-ahead shows many).
  struct RankStall {
    int64_t pulls = 0;     // NextBatch calls by this rank
    int64_t stalls = 0;    // pulls that blocked on production
    double wait_ms = 0.0;  // total time blocked
  };

  // Cumulative pipeline counters (all fetch paths: clients and shims).
  struct Stats {
    int64_t steps_produced = 0;
    int64_t steps_retired = 0;
    // Steps whose constructor data was dropped eagerly via the release hook —
    // at retirement when every rank had already fetched, or (the sequential-
    // streaming case) right after the last claimed fetch landed on a step the
    // cursor floor had retired first. Steps not counted here fall back to the
    // constructors' resident_steps eviction backstop.
    int64_t steps_released = 0;
    int64_t prefetch_hits = 0;    // waits satisfied without blocking
    int64_t prefetch_stalls = 0;  // waits that blocked on production
    int64_t produce_retries = 0;  // produce rounds re-run after transient errors
    size_t queue_depth = 0;       // produced-but-unretired steps right now
    double last_build_ahead_ms = 0.0;
    // Cumulative per-rank stall histogram, indexed by rank.
    std::vector<RankStall> rank_stalls;
  };

  // The pipeline's checkpointable position: the commit step (first step not
  // yet fully consumed — everything below it is retired, so a resume may
  // start there), the produce frontier (first step never planned/popped),
  // and every rank's *delivered* cursor — a rank blocked inside NextBatch
  // has claimed its step but not received it, and is reported at the claimed
  // step (not past it) so a resume re-serves the batch it never got.
  struct Frontier {
    int64_t commit_step = 0;
    int64_t produce_frontier = 0;
    std::vector<int64_t> cursors;
  };

  // Lightweight per-step stats for a live (unretired) step.
  struct StepMeta {
    int64_t step = 0;
    size_t samples = 0;
    int64_t tokens = 0;
    double dp_imbalance = 1.0;
    double plan_compute_ms = 0.0;
    double build_ahead_ms = 0.0;
  };

  // Test/tooling view of a live step: the plan plus slice aliases.
  struct Capture {
    LoadingPlan plan;
    std::vector<std::vector<SampleSlice>> slices_per_constructor;
  };

  // Runs plan+pop+build for `step`; called only from the producer (strictly
  // sequential, one call per step ever).
  using ProduceFn = std::function<Result<ProducedStep>(int64_t step)>;
  // Fetches one rank's view of a produced step (actor Ask; thread-safe).
  using FetchFn = std::function<Result<RankBatch>(int32_t rank, int64_t step)>;
  // Re-runs constructor assembly for a live step from its retained slices
  // (after the mesh changed). Must not re-pop loaders.
  using RebuildFn = std::function<Status(const LoadingPlan& plan,
                                         const std::vector<std::vector<SampleSlice>>& slices)>;
  // Drops a fully fetched step's constructor data.
  using ReleaseFn = std::function<void(int64_t step)>;

  PrefetchPipeline(Config config, int32_t world_size, ProduceFn produce, FetchFn fetch,
                   RebuildFn rebuild, ReleaseFn release);
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  // Starts the producer (no-op in synchronous mode). Idempotent.
  void Start();
  // Stops the producer and unblocks every waiter. Idempotent.
  void Stop();

  // Streaming consumption: claims rank's cursor step, blocks until produced,
  // fetches the view, advances the cursor. One consumer per rank.
  Result<RankBatch> NextBatch(int32_t rank);
  // Future-returning variant; consecutive calls claim consecutive steps.
  std::future<Result<RankBatch>> NextBatchAsync(int32_t rank);

  // Deprecated-shim support: blocks until `step` is produced and raises every
  // cursor lagging behind `step` (the lockstep loop consumes in unison).
  Status WaitProduced(int64_t step);
  // Deprecated-shim support: declares `step` delivered — every cursor moves
  // past it, retiring it from the pipeline (constructor data stays within the
  // resident window for late GetBatch calls, but a Reshard will no longer
  // rebuild it — matching the old "resident data dropped" semantics).
  void MarkShimConsumed(int64_t step);
  // Deprecated-shim fetch: no cursor movement, no retirement refcount.
  Result<RankBatch> FetchStep(int32_t rank, int64_t step);

  // Drain: stop claiming new steps, block new fetches, and wait out both the
  // in-flight production round and every in-flight fetch, so no
  // loader/constructor Ask is mid-air (safe to kill/promote/reshard).
  void Pause();
  void Resume();

  // Rebuilds every live step's constructor data from retained slices against
  // the current mesh and resets fetch accounting to `new_world_size` ranks.
  // Call only while paused.
  Status RebuildLive(int32_t new_world_size);

  Stats stats() const;
  std::vector<RankStall> rank_stalls() const;
  Frontier frontier() const;
  Result<StepMeta> StepInfo(int64_t step) const;
  // Like StepInfo but blocks until `step` is produced (for streaming
  // consumers that want a step's stats before pulling it).
  Result<StepMeta> WaitStepInfo(int64_t step);
  Result<Capture> CaptureStep(int64_t step);

  int64_t cursor(int32_t rank) const;
  int32_t world_size() const;

 private:
  // StepInfo body with mu_ already held (the producer loop captures the
  // just-produced step's meta for on_produced_meta without dropping the lock).
  Result<StepMeta> StepInfoLocked(int64_t step) const;

  struct Ticket {
    ProducedStep data;
    std::vector<uint8_t> fetched;  // one flag per rank (streaming path only)
    int32_t fetch_count = 0;
    bool released = false;  // constructor data already dropped via release_
  };

  // Bookkeeping for a ticket the cursor floor retired while its last fetches
  // were still in flight (in sequential per-rank streaming the final rank's
  // claim advances the floor before its fetch lands). Once every awaited
  // fetch completes, the step's constructor data is released eagerly instead
  // of lingering until the resident_steps eviction backstop.
  struct PendingRelease {
    std::vector<uint8_t> awaiting;  // ranks whose fetch was in flight
    int32_t remaining = 0;
  };

  void ProducerLoop();
  // Produces the next step; `lock` is held on entry/exit, dropped during the
  // produce callback.
  void ProduceOne(std::unique_lock<std::mutex>& lock);
  // Blocks until `step` is produced (inline-producing in synchronous mode).
  // `count_stats` classifies the wait as a prefetch hit or stall; pure
  // observability callers pass false so they don't skew the counters.
  Status WaitProducedLocked(std::unique_lock<std::mutex>& lock, int64_t step,
                            bool count_stats);
  // Runs fetch_ outside the lock, bracketed by the in-flight-fetch counter
  // that Pause() drains; blocks while paused.
  Result<RankBatch> GatedFetch(std::unique_lock<std::mutex>& lock, int32_t rank, int64_t step);
  // Retires in-order every leading step that is fully fetched or passed by
  // all cursors; returns freed slots to the producer.
  void MaybeRetireLocked();
  // Post-fetch bookkeeping for a floor-retired step: marks `rank`'s fetch
  // done and fires the eager release once no fetch is awaited.
  void ResolvePendingReleaseLocked(int64_t step, int32_t rank, bool fetch_ok);
  // Drops the pending-release entry whose awaited rank was voided (shim
  // fast-forward, reshard): the eviction backstop takes over.
  void AbandonPendingReleaseForRankLocked(size_t rank);
  int64_t ConsumptionFloorLocked() const;
  Status HaltStatusLocked(int64_t step) const;

  Config config_;
  ProduceFn produce_;
  FetchFn fetch_;
  RebuildFn rebuild_;
  ReleaseFn release_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int32_t world_size_;
  std::vector<int64_t> cursors_;  // next unconsumed step per rank
  // Step a rank has claimed inside NextBatch but not yet been handed (-1 =
  // none). frontier() reports such ranks at the claimed step, not past it.
  std::vector<int64_t> inflight_claims_;
  // Set when the rank's fetch for its claimed step already returned an
  // error: the claim is kept (a resume must re-serve the undelivered batch)
  // but no fetch is outstanding, so retirement must not await it.
  std::vector<uint8_t> claim_fetch_failed_;
  int64_t next_produce_ = 0;      // first unproduced step
  int64_t retire_floor_ = 0;      // first unretired step
  std::map<int64_t, Ticket> tickets_;
  std::map<int64_t, PendingRelease> pending_release_;
  // Set when production failed: every wait for >= halted_->first errors.
  std::optional<std::pair<int64_t, Status>> halted_;
  bool running_ = false;
  bool paused_ = false;
  // in_produce_: a produce_ callback is actually in flight (an actor Ask may
  // be mid-air) — what Pause() drains. produce_claimed_: some thread owns the
  // current production round, across its whole retry sequence including
  // backoff sleeps — what keeps a second synchronous consumer from
  // double-producing the step while the owner is between attempts.
  bool in_produce_ = false;
  bool produce_claimed_ = false;
  int32_t active_fetches_ = 0;  // fetch_ calls in flight (drained by Pause)
  Stats stats_;
  std::vector<RankStall> rank_stalls_;  // one per rank (streaming path)

  // Slot tokens bounding live steps; Push blocks the producer (backpressure),
  // retirement TryPops to free a slot. Unused in synchronous mode.
  MpmcQueue<int64_t> window_;
  std::thread producer_;
};

}  // namespace msd

#endif  // SRC_API_PREFETCH_PIPELINE_H_
