#include "src/api/data_client.h"

#include "src/api/session.h"

namespace msd {

Result<RankBatch> DataClient::NextBatch() { return pipeline_->NextBatch(rank_); }

Status DataClient::UpdateMixture(std::vector<double> weights, int64_t effective_step) {
  return session_->UpdateMixture(effective_step, std::move(weights));
}

std::future<Result<RankBatch>> DataClient::NextBatchAsync() {
  return pipeline_->NextBatchAsync(rank_);
}

int64_t DataClient::next_step() const { return pipeline_->cursor(rank_); }

}  // namespace msd
