#include "src/api/data_client.h"

namespace msd {

Result<RankBatch> DataClient::NextBatch() { return pipeline_->NextBatch(rank_); }

std::future<Result<RankBatch>> DataClient::NextBatchAsync() {
  return pipeline_->NextBatchAsync(rank_);
}

int64_t DataClient::next_step() const { return pipeline_->cursor(rank_); }

}  // namespace msd
