// DataClient: one training rank's streaming handle onto a Session.
//
// The paper's pull model gives every rank a continuous stream of batches
// while the Planner/Loaders/Constructors work ahead of consumption. A
// DataClient is that stream's consumer end: NextBatch() blocks until the
// rank's next step is produced by the session's prefetch pipeline (usually it
// already is — that's the point) and NextBatchAsync() returns a future so the
// caller can overlap the fetch with its own compute.
//
//   auto session = msd::SessionBuilder().WithCorpus(...).WithMesh(spec).Build();
//   msd::DataClient* client = (*session)->client(rank).value();
//   while (training) {
//     msd::RankBatch batch = client->NextBatch().value();  // hot: prefetch hit
//     ...
//   }
//
// A DataClient is bound to its rank and owned by the Session; handles stay
// valid for the session's lifetime. One consumer per rank: a single
// DataClient must not be shared across threads (different ranks' clients may
// be driven concurrently — that is the intended use).
#ifndef SRC_API_DATA_CLIENT_H_
#define SRC_API_DATA_CLIENT_H_

#include <future>

#include "src/api/prefetch_pipeline.h"
#include "src/constructor/data_constructor.h"

namespace msd {

class Session;

class DataClient {
 public:
  DataClient(const DataClient&) = delete;
  DataClient& operator=(const DataClient&) = delete;

  /// Blocking pull of this rank's next batch; advances the rank's cursor.
  /// Token and pixel payloads inside the batch are zero-copy views of the
  /// session's frozen step buffers.
  Result<RankBatch> NextBatch();

  /// Future-returning pull, for overlapping the fetch with caller compute.
  /// Keep at most one pull (sync or async) outstanding per rank: the step is
  /// claimed when the pull executes, so concurrent pulls on one rank would
  /// claim steps in a nondeterministic order. Backed by a short-lived thread
  /// per call — negligible at step granularity, but hot loops should prefer
  /// NextBatch() on a persistent consumer thread.
  std::future<Result<RankBatch>> NextBatchAsync();

  /// Client-fed mixture re-weighting (the training loop's feedback hook):
  /// commits new per-source base weights taking effect at `effective_step`
  /// (-1, the default, = the next step the planner has not yet planned).
  /// Requires the session to carry a dynamic mixture schedule
  /// (SessionBuilder::WithMixtureSchedule); overrides are validated by the
  /// planner, checkpointed with its state, and replayed on resume.
  Status UpdateMixture(std::vector<double> weights, int64_t effective_step = -1);

  /// The training rank this handle is bound to.
  int32_t rank() const { return rank_; }
  /// The step the next NextBatch() call will serve, or -1 if this rank was
  /// dropped from the mesh by a shrinking Reshard().
  int64_t next_step() const;

 private:
  friend class Session;
  DataClient(Session* session, PrefetchPipeline* pipeline, int32_t rank)
      : session_(session), pipeline_(pipeline), rank_(rank) {}

  Session* session_;
  PrefetchPipeline* pipeline_;
  int32_t rank_;
};

}  // namespace msd

#endif  // SRC_API_DATA_CLIENT_H_
