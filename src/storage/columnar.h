// MSDF ("MegaScale Data Format"): the Parquet stand-in.
//
// Layout:
//   [magic u32]
//   row group 0: [row_count u64][row: len-prefixed bytes]*
//   row group 1: ...
//   footer: [schema][group index][total_rows]
//   [footer_offset u64][magic u32]
//
// Like Parquet (Sec. 2.3), a reader must (1) open a socket, (2) load the
// footer metadata into memory, and (3) hold a row-group-sized buffer while
// scanning — which is exactly the per-source state whose replication the
// paper eliminates. Row-group target size defaults into the paper's
// 512MB–1GB band but is configurable so tests stay small.
#ifndef SRC_STORAGE_COLUMNAR_H_
#define SRC_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/io/block_cache.h"  // IoTenantId — cached-mode reads carry a tenant tag
#include "src/storage/memory_model.h"
#include "src/storage/object_store.h"

namespace msd {

class IoScheduler;  // src/io/io_scheduler.h — cached ranged-read mode

enum class FieldType : uint8_t { kInt64 = 0, kFloat64 = 1, kBytes = 2 };

struct Field {
  std::string name;
  FieldType type;
  bool operator==(const Field&) const = default;
};

struct Schema {
  std::vector<Field> fields;
  bool operator==(const Schema&) const = default;
  std::string Serialize() const;
  static Result<Schema> Deserialize(const std::string& bytes);
};

struct RowGroupMeta {
  int64_t offset = 0;      // byte offset of the group within the file
  int64_t bytes = 0;       // serialized size of the group
  int64_t row_count = 0;
  // FNV-1a of the serialized group, computed at write time. Readers verify it
  // on every fetch, so a bit flip anywhere between the writer and the reader
  // (storage, transport, cache) surfaces as DataLoss instead of poison rows.
  uint64_t checksum = 0;
};

struct MsdfFileInfo {
  Schema schema;
  std::vector<RowGroupMeta> row_groups;
  int64_t total_rows = 0;
  int64_t footer_bytes = 0;  // metadata footprint a reader must keep resident
};

struct MsdfWriteOptions {
  // Flush a row group once its serialized payload reaches this many bytes.
  int64_t target_row_group_bytes = 768 * kMiB;
};

// Streams rows into an in-memory MSDF file image.
class MsdfWriter {
 public:
  MsdfWriter(Schema schema, MsdfWriteOptions options = MsdfWriteOptions());

  void AppendRow(const std::string& row_bytes);
  // Finalizes groups + footer and returns the complete file image.
  std::string Finish();

  int64_t rows_written() const { return total_rows_; }

 private:
  void FlushGroup();

  Schema schema_;
  MsdfWriteOptions options_;
  std::string file_;
  std::string current_group_;
  int64_t current_group_rows_ = 0;
  std::vector<RowGroupMeta> groups_;
  int64_t total_rows_ = 0;
  bool finished_ = false;
};

// Reads an MSDF file in one of three modes. All hold:
//  - footer metadata (charged as kFileMetadata) for the reader's lifetime, and
//  - one row-group buffer (charged as kRowGroupBuffer) while a group is open.
//
//  - Open: the legacy whole-blob mode — a FileHandle aliasing the full blob,
//    row groups are free in-memory slices. Local-storage semantics.
//  - OpenRanged: remote-storage semantics — every row-group (and footer) read
//    is one synchronous ObjectStore::Get, the unit a LatencyInjectingStore
//    charges. This is what the paper's uncached Parquet reader pays.
//  - OpenCached: OpenRanged routed through an IoScheduler, so reads are
//    served from the BlockCache, coalesced with concurrent readers of the
//    same block, and overlap with read-ahead prefetches.
class MsdfReader {
 public:
  static Result<MsdfReader> Open(const ObjectStore& store, const std::string& name,
                                 MemoryAccountant* accountant, MemoryAccountant::NodeId node);
  static Result<MsdfReader> OpenRanged(const ObjectStore& store, const std::string& name,
                                       MemoryAccountant* accountant,
                                       MemoryAccountant::NodeId node);
  static Result<MsdfReader> OpenCached(IoScheduler* io, const std::string& name,
                                       MemoryAccountant* accountant,
                                       MemoryAccountant::NodeId node,
                                       IoTenantId tenant = kDefaultIoTenant);

  const MsdfFileInfo& info() const { return info_; }

  // Loads group `index` into the reader's buffer and returns its rows.
  Result<std::vector<std::string>> ReadRowGroup(size_t index);
  // Drops the active row-group buffer (and its memory charge).
  void ReleaseBuffer();

  // Total resident bytes this reader currently charges (socket + metadata +
  // active buffer) — the "file access state" of Fig. 5a.
  int64_t ResidentBytes() const;

 private:
  MsdfReader() = default;

  // Footer parse + memory charges shared by the ranged/cached factories.
  static Result<MsdfReader> FinishRangedOpen(MsdfReader reader, int64_t file_size,
                                             MemoryAccountant* accountant,
                                             MemoryAccountant::NodeId node);
  // [offset, offset+length) through whichever backing this reader has.
  Result<std::shared_ptr<const std::string>> FetchRange(int64_t offset, int64_t length) const;

  FileHandle handle_;              // whole-blob mode
  const ObjectStore* range_store_ = nullptr;  // ranged mode
  IoScheduler* io_ = nullptr;      // cached mode
  IoTenantId tenant_ = kDefaultIoTenant;  // cached-mode route + stats owner
  std::string name_;
  MsdfFileInfo info_;
  MemoryAccountant* accountant_ = nullptr;
  MemoryAccountant::NodeId node_ = 0;
  MemCharge socket_charge_;        // ranged/cached modes (no FileHandle)
  MemCharge metadata_charge_;
  MemCharge buffer_charge_;
  int64_t active_buffer_bytes_ = 0;
};

// Parses only the footer (cheaply) — used to build loading plans without
// opening a full reader.
Result<MsdfFileInfo> ReadMsdfFooter(const std::string& file_bytes);

// Ranged-footer building blocks (shared by the readers above and the
// read-ahead policy, which resolves footers through the block cache).
inline constexpr size_t kMsdfTailBytes = sizeof(uint64_t) + sizeof(uint32_t);
// Parses the trailing kMsdfTailBytes; returns the footer offset.
Result<uint64_t> ParseMsdfTail(std::string_view tail, uint64_t file_size);
// Parses the footer body [footer_offset, file_size - kMsdfTailBytes).
// `footer_bytes_total` is the resident-metadata charge (tail included).
Result<MsdfFileInfo> ParseMsdfFooterBody(std::string_view body, int64_t footer_bytes_total);

}  // namespace msd

#endif  // SRC_STORAGE_COLUMNAR_H_
