// MemoryAccountant: byte-level accounting of every memory-consuming artifact.
//
// The paper's memory results (Figs. 4, 12, 16, 17) hinge on *which component
// holds which bytes on which node*. Every file handle, row-group buffer,
// worker context, batch buffer, and shadow loader in this repository charges
// the accountant with a (node, category) tag, so redundancy eliminations are
// measured rather than asserted.
#ifndef SRC_STORAGE_MEMORY_MODEL_H_
#define SRC_STORAGE_MEMORY_MODEL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace msd {

enum class MemCategory {
  kFileSocket = 0,      // per-connection socket buffers
  kFileMetadata,        // footers, schemas, row-group indexes
  kRowGroupBuffer,      // active read buffers over row groups
  kWorkerContext,       // per-worker execution context (interpreter, scratch)
  kPrefetchBuffer,      // per-worker prefetch/batch staging
  kBatchBuffer,         // constructed micro-batches awaiting delivery
  kPlannerState,        // plans, metadata summaries, DGraphs
  kShadowLoader,        // hot-standby loader replicas
  kCheckpoint,          // snapshot blobs
  kCategoryCount,
};

const char* MemCategoryName(MemCategory c);

class MemoryAccountant {
 public:
  using NodeId = int32_t;

  void Add(NodeId node, MemCategory category, int64_t bytes);
  void Sub(NodeId node, MemCategory category, int64_t bytes) { Add(node, category, -bytes); }

  int64_t NodeTotal(NodeId node) const;
  int64_t CategoryTotal(MemCategory category) const;
  int64_t GrandTotal() const;
  // Mean of NodeTotal over all nodes that ever saw a charge.
  double MeanPerNode() const;
  int64_t PeakGrandTotal() const { return peak_total_; }

  // Per-category grand totals, indexed by MemCategory.
  std::vector<int64_t> CategoryBreakdown() const;
  std::string Report() const;

  void Reset();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<NodeId, std::vector<int64_t>> per_node_;
  int64_t total_ = 0;
  int64_t peak_total_ = 0;
};

// RAII charge: releases the bytes on destruction.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(MemoryAccountant* accountant, MemoryAccountant::NodeId node, MemCategory category,
            int64_t bytes);
  ~MemCharge();

  MemCharge(MemCharge&& other) noexcept;
  MemCharge& operator=(MemCharge&& other) noexcept;
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;

  int64_t bytes() const { return bytes_; }
  void Release();

 private:
  MemoryAccountant* accountant_ = nullptr;
  MemoryAccountant::NodeId node_ = 0;
  MemCategory category_ = MemCategory::kFileSocket;
  int64_t bytes_ = 0;
};

}  // namespace msd

#endif  // SRC_STORAGE_MEMORY_MODEL_H_
