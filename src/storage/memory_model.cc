#include "src/storage/memory_model.h"

#include <algorithm>

#include "src/common/status.h"
#include "src/common/units.h"

namespace msd {

const char* MemCategoryName(MemCategory c) {
  switch (c) {
    case MemCategory::kFileSocket:
      return "file_socket";
    case MemCategory::kFileMetadata:
      return "file_metadata";
    case MemCategory::kRowGroupBuffer:
      return "row_group_buffer";
    case MemCategory::kWorkerContext:
      return "worker_context";
    case MemCategory::kPrefetchBuffer:
      return "prefetch_buffer";
    case MemCategory::kBatchBuffer:
      return "batch_buffer";
    case MemCategory::kPlannerState:
      return "planner_state";
    case MemCategory::kShadowLoader:
      return "shadow_loader";
    case MemCategory::kCheckpoint:
      return "checkpoint";
    case MemCategory::kCategoryCount:
      break;
  }
  return "unknown";
}

void MemoryAccountant::Add(NodeId node, MemCategory category, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cats = per_node_[node];
  if (cats.empty()) {
    cats.assign(static_cast<size_t>(MemCategory::kCategoryCount), 0);
  }
  cats[static_cast<size_t>(category)] += bytes;
  MSD_CHECK(cats[static_cast<size_t>(category)] >= 0);
  total_ += bytes;
  peak_total_ = std::max(peak_total_, total_);
}

int64_t MemoryAccountant::NodeTotal(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_node_.find(node);
  if (it == per_node_.end()) {
    return 0;
  }
  int64_t sum = 0;
  for (int64_t b : it->second) {
    sum += b;
  }
  return sum;
}

int64_t MemoryAccountant::CategoryTotal(MemCategory category) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t sum = 0;
  for (const auto& [node, cats] : per_node_) {
    sum += cats[static_cast<size_t>(category)];
  }
  return sum;
}

int64_t MemoryAccountant::GrandTotal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double MemoryAccountant::MeanPerNode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (per_node_.empty()) {
    return 0.0;
  }
  return static_cast<double>(total_) / static_cast<double>(per_node_.size());
}

std::vector<int64_t> MemoryAccountant::CategoryBreakdown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int64_t> out(static_cast<size_t>(MemCategory::kCategoryCount), 0);
  for (const auto& [node, cats] : per_node_) {
    for (size_t i = 0; i < cats.size(); ++i) {
      out[i] += cats[i];
    }
  }
  return out;
}

std::string MemoryAccountant::Report() const {
  std::vector<int64_t> breakdown = CategoryBreakdown();
  std::string out = "memory breakdown:\n";
  for (size_t i = 0; i < breakdown.size(); ++i) {
    if (breakdown[i] == 0) {
      continue;
    }
    out += "  ";
    out += MemCategoryName(static_cast<MemCategory>(i));
    out += ": " + FormatBytes(breakdown[i]) + "\n";
  }
  out += "  total: " + FormatBytes(GrandTotal()) + "\n";
  return out;
}

void MemoryAccountant::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  per_node_.clear();
  total_ = 0;
  peak_total_ = 0;
}

MemCharge::MemCharge(MemoryAccountant* accountant, MemoryAccountant::NodeId node,
                     MemCategory category, int64_t bytes)
    : accountant_(accountant), node_(node), category_(category), bytes_(bytes) {
  if (accountant_ != nullptr && bytes_ > 0) {
    accountant_->Add(node_, category_, bytes_);
  }
}

MemCharge::~MemCharge() { Release(); }

MemCharge::MemCharge(MemCharge&& other) noexcept
    : accountant_(other.accountant_),
      node_(other.node_),
      category_(other.category_),
      bytes_(other.bytes_) {
  other.accountant_ = nullptr;
  other.bytes_ = 0;
}

MemCharge& MemCharge::operator=(MemCharge&& other) noexcept {
  if (this != &other) {
    Release();
    accountant_ = other.accountant_;
    node_ = other.node_;
    category_ = other.category_;
    bytes_ = other.bytes_;
    other.accountant_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void MemCharge::Release() {
  if (accountant_ != nullptr && bytes_ > 0) {
    accountant_->Sub(node_, category_, bytes_);
  }
  accountant_ = nullptr;
  bytes_ = 0;
}

}  // namespace msd
