#include "src/storage/columnar.h"

#include <functional>
#include <utility>

#include "src/common/hash.h"
#include "src/io/io_scheduler.h"
#include "src/storage/wire.h"

namespace msd {

namespace {
constexpr uint32_t kMagic = 0x4D534446;  // "MSDF"
}  // namespace

std::string Schema::Serialize() const {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(fields.size()));
  for (const Field& f : fields) {
    w.PutBytes(f.name);
    w.PutU8(static_cast<uint8_t>(f.type));
  }
  return w.Take();
}

Result<Schema> Schema::Deserialize(const std::string& bytes) {
  WireReader r(bytes);
  uint32_t n = r.GetU32();
  // Each field is at least a length prefix + type byte; a count claiming
  // more than the payload could hold is corruption, not a big schema.
  if (static_cast<uint64_t>(n) * (sizeof(uint32_t) + 1) > r.remaining()) {
    return Status::DataLoss("corrupt schema: field count exceeds payload");
  }
  Schema schema;
  schema.fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    f.name = r.GetBytes();
    f.type = static_cast<FieldType>(r.GetU8());
    schema.fields.push_back(std::move(f));
  }
  if (!r.Ok()) {
    return Status::DataLoss("truncated schema");
  }
  return schema;
}

MsdfWriter::MsdfWriter(Schema schema, MsdfWriteOptions options)
    : schema_(std::move(schema)), options_(options) {
  WireWriter w;
  w.PutU32(kMagic);
  file_ = w.Take();
}

void MsdfWriter::AppendRow(const std::string& row_bytes) {
  MSD_CHECK(!finished_);
  WireWriter w;
  w.PutBytes(row_bytes);
  current_group_.append(w.buffer());
  ++current_group_rows_;
  ++total_rows_;
  if (static_cast<int64_t>(current_group_.size()) >= options_.target_row_group_bytes) {
    FlushGroup();
  }
}

void MsdfWriter::FlushGroup() {
  if (current_group_rows_ == 0) {
    return;
  }
  RowGroupMeta meta;
  meta.offset = static_cast<int64_t>(file_.size());
  WireWriter header;
  header.PutU64(static_cast<uint64_t>(current_group_rows_));
  file_.append(header.buffer());
  file_.append(current_group_);
  meta.bytes = static_cast<int64_t>(file_.size()) - meta.offset;
  meta.row_count = current_group_rows_;
  meta.checksum = Fnv1a64(std::string_view(file_).substr(
      static_cast<size_t>(meta.offset), static_cast<size_t>(meta.bytes)));
  groups_.push_back(meta);
  current_group_.clear();
  current_group_rows_ = 0;
}

std::string MsdfWriter::Finish() {
  MSD_CHECK(!finished_);
  finished_ = true;
  FlushGroup();
  int64_t footer_offset = static_cast<int64_t>(file_.size());
  WireWriter footer;
  footer.PutBytes(schema_.Serialize());
  footer.PutU64(static_cast<uint64_t>(groups_.size()));
  for (const RowGroupMeta& g : groups_) {
    footer.PutI64(g.offset);
    footer.PutI64(g.bytes);
    footer.PutI64(g.row_count);
    footer.PutU64(g.checksum);
  }
  footer.PutI64(total_rows_);
  file_.append(footer.buffer());
  WireWriter tail;
  tail.PutU64(static_cast<uint64_t>(footer_offset));
  tail.PutU32(kMagic);
  file_.append(tail.buffer());
  return std::move(file_);
}

Result<uint64_t> ParseMsdfTail(std::string_view tail, uint64_t file_size) {
  if (tail.size() != kMsdfTailBytes) {
    return Status::DataLoss("bad MSDF tail size");
  }
  WireReader r(tail);
  uint64_t footer_offset = r.GetU64();
  uint32_t magic = r.GetU32();
  if (!r.Ok() || magic != kMagic) {
    return Status::DataLoss("bad MSDF tail magic");
  }
  if (footer_offset > file_size - kMsdfTailBytes) {
    return Status::DataLoss("bad footer offset");
  }
  return footer_offset;
}

Result<MsdfFileInfo> ParseMsdfFooterBody(std::string_view body, int64_t footer_bytes_total) {
  WireReader r(body);
  std::string schema_bytes = r.GetBytes();
  Result<Schema> schema = Schema::Deserialize(schema_bytes);
  if (!schema.ok()) {
    return schema.status();
  }
  MsdfFileInfo info;
  info.schema = std::move(schema.value());
  uint64_t n_groups = r.GetU64();
  if (n_groups > r.remaining() / (4 * sizeof(int64_t))) {
    return Status::DataLoss("corrupt footer: row-group count exceeds payload");
  }
  info.row_groups.reserve(n_groups);
  for (uint64_t i = 0; i < n_groups; ++i) {
    RowGroupMeta g;
    g.offset = r.GetI64();
    g.bytes = r.GetI64();
    g.row_count = r.GetI64();
    g.checksum = r.GetU64();
    info.row_groups.push_back(g);
  }
  info.total_rows = r.GetI64();
  if (!r.Ok()) {
    return Status::DataLoss("truncated footer");
  }
  info.footer_bytes = footer_bytes_total;
  return info;
}

Result<MsdfFileInfo> ReadMsdfFooter(const std::string& file_bytes) {
  if (file_bytes.size() < sizeof(uint32_t) + kMsdfTailBytes) {
    return Status::DataLoss("file too small for MSDF");
  }
  {
    WireReader head(file_bytes);
    if (head.GetU32() != kMagic) {
      return Status::DataLoss("bad MSDF head magic");
    }
  }
  std::string_view bytes(file_bytes);
  Result<uint64_t> footer_offset =
      ParseMsdfTail(bytes.substr(bytes.size() - kMsdfTailBytes), bytes.size());
  if (!footer_offset.ok()) {
    return footer_offset.status();
  }
  return ParseMsdfFooterBody(
      bytes.substr(footer_offset.value(),
                   bytes.size() - kMsdfTailBytes - footer_offset.value()),
      static_cast<int64_t>(bytes.size() - footer_offset.value()));
}

Result<MsdfReader> MsdfReader::Open(const ObjectStore& store, const std::string& name,
                                    MemoryAccountant* accountant,
                                    MemoryAccountant::NodeId node) {
  Result<FileHandle> handle = store.Open(name, node);
  if (!handle.ok()) {
    return handle.status();
  }
  Result<MsdfFileInfo> info = ReadMsdfFooter(handle->Contents());
  if (!info.ok()) {
    return info.status();
  }
  MsdfReader reader;
  reader.handle_ = std::move(handle.value());
  reader.name_ = name;
  reader.info_ = std::move(info.value());
  reader.accountant_ = accountant;
  reader.node_ = node;
  reader.metadata_charge_ =
      MemCharge(accountant, node, MemCategory::kFileMetadata, reader.info_.footer_bytes);
  return reader;
}

namespace {

// Footer via two ranged reads: the tail (offset + magic), then the footer
// body. The head magic is not checked — that would cost a third Get; the tail
// magic plus the footer self-consistency checks carry the validation. When an
// `invalidate` hook is supplied (cached mode), a range that fails validation
// is dropped from the cache and refetched once from authoritative storage —
// the tail and footer carry no checksum of their own, so the parse checks are
// the corruption detector, and without the refetch a single cached bit-flip
// would permanently brick the open.
Result<MsdfFileInfo> ReadFooterViaRanges(
    const std::function<Result<std::shared_ptr<const std::string>>(int64_t, int64_t)>& fetch,
    const std::function<void(int64_t, int64_t)>& invalidate, int64_t file_size) {
  if (file_size < static_cast<int64_t>(sizeof(uint32_t) + kMsdfTailBytes)) {
    return Status::DataLoss("file too small for MSDF");
  }
  const int64_t tail_begin = file_size - static_cast<int64_t>(kMsdfTailBytes);
  Result<std::shared_ptr<const std::string>> tail =
      fetch(tail_begin, static_cast<int64_t>(kMsdfTailBytes));
  if (!tail.ok()) {
    return tail.status();
  }
  Result<uint64_t> footer_offset =
      ParseMsdfTail(**tail, static_cast<uint64_t>(file_size));
  if (!footer_offset.ok() && invalidate != nullptr) {
    invalidate(tail_begin, static_cast<int64_t>(kMsdfTailBytes));
    tail = fetch(tail_begin, static_cast<int64_t>(kMsdfTailBytes));
    if (!tail.ok()) {
      return tail.status();
    }
    footer_offset = ParseMsdfTail(**tail, static_cast<uint64_t>(file_size));
  }
  if (!footer_offset.ok()) {
    return footer_offset.status();
  }
  const int64_t body_begin = static_cast<int64_t>(footer_offset.value());
  const int64_t body_bytes = file_size - static_cast<int64_t>(kMsdfTailBytes) - body_begin;
  Result<std::shared_ptr<const std::string>> body = fetch(body_begin, body_bytes);
  if (!body.ok()) {
    return body.status();
  }
  Result<MsdfFileInfo> info = ParseMsdfFooterBody(**body, file_size - body_begin);
  if (!info.ok() && invalidate != nullptr) {
    invalidate(body_begin, body_bytes);
    body = fetch(body_begin, body_bytes);
    if (!body.ok()) {
      return body.status();
    }
    info = ParseMsdfFooterBody(**body, file_size - body_begin);
  }
  return info;
}

}  // namespace

Result<std::shared_ptr<const std::string>> MsdfReader::FetchRange(int64_t offset,
                                                                  int64_t length) const {
  if (io_ != nullptr) {
    return io_->ReadBlock(name_, offset, length, tenant_);
  }
  if (range_store_ != nullptr) {
    Result<std::string> bytes = range_store_->Get(name_, offset, length);
    if (!bytes.ok()) {
      return bytes.status();
    }
    return std::make_shared<const std::string>(std::move(bytes.value()));
  }
  Result<std::string> bytes = handle_.Read(offset, length);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return std::make_shared<const std::string>(std::move(bytes.value()));
}

// Shared tail of OpenRanged/OpenCached: `reader` arrives with its backing
// fields (range_store_ or io_, plus name) already set.
Result<MsdfReader> MsdfReader::FinishRangedOpen(MsdfReader reader, int64_t file_size,
                                                MemoryAccountant* accountant,
                                                MemoryAccountant::NodeId node) {
  reader.accountant_ = accountant;
  reader.node_ = node;
  std::function<void(int64_t, int64_t)> invalidate;
  if (reader.io_ != nullptr) {
    // Cached mode: a footer range that fails validation may be a poisoned
    // cache entry — drop it so the refetch goes back to storage. Without a
    // cache the refetch would re-read the same bytes, so skip it.
    IoScheduler* io = reader.io_;
    const std::string name = reader.name_;
    const IoTenantId tenant = reader.tenant_;
    invalidate = [io, name, tenant](int64_t offset, int64_t length) {
      io->Invalidate(name, offset, length, tenant);
    };
  }
  Result<MsdfFileInfo> info = ReadFooterViaRanges(
      [&reader](int64_t offset, int64_t length) { return reader.FetchRange(offset, length); },
      invalidate, file_size);
  if (!info.ok()) {
    return info.status();
  }
  reader.info_ = std::move(info.value());
  reader.socket_charge_ =
      MemCharge(accountant, node, MemCategory::kFileSocket, kSocketBufferBytes);
  reader.metadata_charge_ =
      MemCharge(accountant, node, MemCategory::kFileMetadata, reader.info_.footer_bytes);
  return reader;
}

Result<MsdfReader> MsdfReader::OpenRanged(const ObjectStore& store, const std::string& name,
                                          MemoryAccountant* accountant,
                                          MemoryAccountant::NodeId node) {
  Result<int64_t> size = store.SizeOf(name);
  if (!size.ok()) {
    return size.status();
  }
  MsdfReader reader;
  reader.range_store_ = &store;
  reader.name_ = name;
  return FinishRangedOpen(std::move(reader), size.value(), accountant, node);
}

Result<MsdfReader> MsdfReader::OpenCached(IoScheduler* io, const std::string& name,
                                          MemoryAccountant* accountant,
                                          MemoryAccountant::NodeId node, IoTenantId tenant) {
  MSD_CHECK(io != nullptr);
  Result<int64_t> size = io->store(tenant)->SizeOf(name);
  if (!size.ok()) {
    return size.status();
  }
  MsdfReader reader;
  reader.io_ = io;
  reader.tenant_ = tenant;
  reader.name_ = name;
  return FinishRangedOpen(std::move(reader), size.value(), accountant, node);
}

Result<std::vector<std::string>> MsdfReader::ReadRowGroup(size_t index) {
  if (index >= info_.row_groups.size()) {
    return Status::OutOfRange("row group " + std::to_string(index) + " of " +
                              std::to_string(info_.row_groups.size()));
  }
  const RowGroupMeta& meta = info_.row_groups[index];
  Result<std::shared_ptr<const std::string>> bytes = FetchRange(meta.offset, meta.bytes);
  if (!bytes.ok()) {
    return bytes.status();
  }
  if (Fnv1a64(**bytes) != meta.checksum) {
    // The bytes were damaged somewhere between the writer and here. In cached
    // mode the poison copy may be sitting in the block cache (a corruption
    // injected at Get time is checksummed as-is on insert, so the cache's own
    // verification cannot catch it) — invalidate and refetch once from
    // authoritative storage before declaring the range lost.
    if (io_ != nullptr) {
      io_->Invalidate(name_, meta.offset, meta.bytes, tenant_);
      bytes = FetchRange(meta.offset, meta.bytes);
      if (!bytes.ok()) {
        return bytes.status();
      }
    }
    if (io_ == nullptr || Fnv1a64(**bytes) != meta.checksum) {
      return Status::DataLoss("row group " + std::to_string(index) + " of " + name_ +
                              ": checksum mismatch");
    }
  }
  ReleaseBuffer();
  buffer_charge_ = MemCharge(accountant_, node_, MemCategory::kRowGroupBuffer, meta.bytes);
  active_buffer_bytes_ = meta.bytes;

  WireReader r(**bytes);
  uint64_t rows = r.GetU64();
  if (rows > r.remaining() / sizeof(uint32_t)) {
    return Status::DataLoss("corrupt row group " + std::to_string(index) +
                            ": row count exceeds payload");
  }
  std::vector<std::string> out;
  out.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    out.push_back(r.GetBytes());
  }
  if (!r.Ok() || static_cast<int64_t>(rows) != meta.row_count) {
    return Status::DataLoss("corrupt row group " + std::to_string(index));
  }
  return out;
}

void MsdfReader::ReleaseBuffer() {
  buffer_charge_.Release();
  active_buffer_bytes_ = 0;
}

int64_t MsdfReader::ResidentBytes() const {
  return kSocketBufferBytes + info_.footer_bytes + active_buffer_bytes_;
}

}  // namespace msd
