// ObjectStore: the HDFS/S3 stand-in — a flat namespace of immutable blobs.
//
// Two backing modes:
//  - In-memory (default): blobs live in a map, as before. Used for the
//    materialized corpus and anything whose lifetime is the process.
//  - Disk-backed: constructed with a root directory, every blob is also a
//    real file under it and survives the process — this is what the durable
//    checkpoint subsystem (src/checkpoint/) writes through.
//
// Put is atomic in both modes: the blob is fully staged before it becomes
// visible (write-temp-then-rename on disk, fully-built-then-swapped in
// memory), so a reader — or a crash — can never observe a half-written blob.
// This is the property the checkpoint manifest publish and GCS snapshot
// write-through rely on.
//
// Opening a file produces a FileHandle, which charges the memory accountant
// for socket buffers (the "dedicated socket to the file" of Sec. 2.3). Reads
// go through the handle so the per-source access-state cost is explicit.
#ifndef SRC_STORAGE_OBJECT_STORE_H_
#define SRC_STORAGE_OBJECT_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/memory_model.h"

namespace msd {

// Socket send/receive buffers held per open connection.
inline constexpr int64_t kSocketBufferBytes = 256 * 1024;

class ObjectStore;

class FileHandle {
 public:
  FileHandle() = default;
  ~FileHandle() = default;
  FileHandle(FileHandle&&) = default;
  FileHandle& operator=(FileHandle&&) = default;

  bool valid() const { return blob_ != nullptr; }
  const std::string& name() const { return name_; }
  int64_t size() const { return blob_ != nullptr ? static_cast<int64_t>(blob_->size()) : 0; }

  // Random-access read; returns the bytes in [offset, offset+length).
  Result<std::string> Read(int64_t offset, int64_t length) const;
  // Zero-copy view of the whole blob (used by the reader's footer parse).
  const std::string& Contents() const;

 private:
  friend class ObjectStore;
  std::string name_;
  std::shared_ptr<const std::string> blob_;
  MemCharge socket_charge_;
};

class ObjectStore {
 public:
  explicit ObjectStore(MemoryAccountant* accountant = nullptr) : accountant_(accountant) {}
  // Disk-backed store rooted at `root_dir` (created if missing). Blob names
  // map to relative file paths; '/' separators become directories. Existing
  // files under the root are visible immediately (loaded lazily on Open).
  explicit ObjectStore(std::string root_dir, MemoryAccountant* accountant = nullptr);
  virtual ~ObjectStore() = default;

  // Atomic publish: the name either maps to the complete new bytes or to its
  // previous content, never to a partial write (temp file + rename on disk).
  virtual Status Put(const std::string& name, std::string bytes);
  virtual bool Exists(const std::string& name) const;
  virtual Status Delete(const std::string& name);
  virtual std::vector<std::string> List(const std::string& prefix = "") const;
  virtual int64_t TotalBytes() const;

  virtual bool disk_backed() const { return !root_.empty(); }
  virtual const std::string& root_dir() const { return root_; }

  // Opens a connection to the named blob; the handle charges socket buffers on
  // `node` until destroyed.
  virtual Result<FileHandle> Open(const std::string& name, MemoryAccountant::NodeId node) const;

  // Remote-storage read path: one ranged Get per call — the unit the
  // src/io/ block cache stores and the LatencyInjectingStore charges.
  // Returns the bytes in [offset, offset+length) of the named blob.
  virtual Result<std::string> Get(const std::string& name, int64_t offset,
                                  int64_t length) const;
  // Size of the named blob, without transferring it (a metadata op: the
  // latency decorator does not charge Gets for it).
  virtual Result<int64_t> SizeOf(const std::string& name) const;

 private:
  // Shared lookup for Open/Get/SizeOf: the cached blob, lazily loaded from
  // disk in disk-backed mode.
  Result<std::shared_ptr<const std::string>> FindBlob(const std::string& name) const;
  // Absolute path for `name` under the disk root; errors on names that would
  // escape the root ("..", absolute paths) or collide with staging files.
  Result<std::string> DiskPathFor(const std::string& name) const;

  mutable std::mutex mutex_;
  // Write-through cache in disk mode; the authoritative namespace otherwise.
  mutable std::unordered_map<std::string, std::shared_ptr<const std::string>> blobs_;
  MemoryAccountant* accountant_;
  std::string root_;
};

}  // namespace msd

#endif  // SRC_STORAGE_OBJECT_STORE_H_
