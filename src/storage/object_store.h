// ObjectStore: the HDFS/S3 stand-in — a flat namespace of immutable blobs.
//
// Opening a file produces a FileHandle, which charges the memory accountant
// for socket buffers (the "dedicated socket to the file" of Sec. 2.3). Reads
// go through the handle so the per-source access-state cost is explicit.
#ifndef SRC_STORAGE_OBJECT_STORE_H_
#define SRC_STORAGE_OBJECT_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/memory_model.h"

namespace msd {

// Socket send/receive buffers held per open connection.
inline constexpr int64_t kSocketBufferBytes = 256 * 1024;

class ObjectStore;

class FileHandle {
 public:
  FileHandle() = default;
  ~FileHandle() = default;
  FileHandle(FileHandle&&) = default;
  FileHandle& operator=(FileHandle&&) = default;

  bool valid() const { return blob_ != nullptr; }
  const std::string& name() const { return name_; }
  int64_t size() const { return blob_ != nullptr ? static_cast<int64_t>(blob_->size()) : 0; }

  // Random-access read; returns the bytes in [offset, offset+length).
  Result<std::string> Read(int64_t offset, int64_t length) const;
  // Zero-copy view of the whole blob (used by the reader's footer parse).
  const std::string& Contents() const;

 private:
  friend class ObjectStore;
  std::string name_;
  std::shared_ptr<const std::string> blob_;
  MemCharge socket_charge_;
};

class ObjectStore {
 public:
  explicit ObjectStore(MemoryAccountant* accountant = nullptr) : accountant_(accountant) {}

  Status Put(const std::string& name, std::string bytes);
  bool Exists(const std::string& name) const;
  Status Delete(const std::string& name);
  std::vector<std::string> List(const std::string& prefix = "") const;
  int64_t TotalBytes() const;

  // Opens a connection to the named blob; the handle charges socket buffers on
  // `node` until destroyed.
  Result<FileHandle> Open(const std::string& name, MemoryAccountant::NodeId node) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const std::string>> blobs_;
  MemoryAccountant* accountant_;
};

}  // namespace msd

#endif  // SRC_STORAGE_OBJECT_STORE_H_
