// Little-endian byte-level serialization helpers for the MSDF file format and
// checkpoint blobs.
#ifndef SRC_STORAGE_WIRE_H_
#define SRC_STORAGE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/common/status.h"

namespace msd {

class WireWriter {
 public:
  // Pre-sizes the buffer for writers that know their payload size up front
  // (plan/snapshot serialization), avoiding repeated growth reallocations.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  // Bulk POD-array record: element count, then the raw little-endian bytes in
  // one append. The payload-bearing encode path (MSDF sample rows carrying
  // token/pixel blobs) uses this instead of a per-element loop.
  template <typename T>
  void PutPodArray(const T* values, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU32(static_cast<uint32_t>(count));
    if (count > 0) {
      PutRaw(values, count * sizeof(T));
    }
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Reads over borrowed bytes: the reader holds a view, so the backing string
// (or sub-record view from GetBytesView) must outlive it.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}
  WireReader(std::string_view data, size_t offset) : data_(data), pos_(offset) {}

  bool Ok() const { return ok_; }
  size_t pos() const { return pos_; }
  // Bytes left to read. Decoders must bound element counts against this
  // before reserving (a corrupt count would otherwise drive a huge
  // allocation or an out-of-bounds scan long before the read fails).
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  // Marks the reader failed (decoder-detected corruption, e.g. an element
  // count larger than the bytes that could possibly back it).
  void MarkCorrupt() { ok_ = false; }

  uint8_t GetU8() {
    uint8_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  double GetF64() {
    double v = 0;
    GetRaw(&v, sizeof(v));
    return v;
  }
  std::string GetBytes() { return std::string(GetBytesView()); }

  // Bulk POD-array record written by PutPodArray: the count is bounded
  // against remaining() BEFORE any allocation (corrupt counts return an empty
  // view with the reader marked failed, never an OOM/OOB), and the element
  // bytes land in `out` via one memcpy. Returns the element count.
  template <typename T>
  size_t GetPodArray(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t count = GetU32();
    if (!ok_ || static_cast<uint64_t>(count) * sizeof(T) > remaining()) {
      ok_ = false;
      out->clear();
      return 0;
    }
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return count;
  }

  // Non-copying variant for readers that only parse the record in place; the
  // returned view borrows from this reader's backing bytes.
  std::string_view GetBytesView() {
    uint32_t n = GetU32();
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  void GetRaw(void* p, size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace msd

#endif  // SRC_STORAGE_WIRE_H_
