#include "src/storage/object_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>

namespace msd {

namespace fs = std::filesystem;

namespace {

// Prefix of in-flight staging files; hidden from List and rejected as a blob
// name so a reader can never pick up a half-written temp.
constexpr char kStagingPrefix[] = ".staging-";

bool IsStagingFile(const std::string& filename) {
  return filename.rfind(kStagingPrefix, 0) == 0;
}

// Writes `bytes` to `path` and fsyncs the file descriptor, so the data is on
// stable storage before the caller publishes it via rename. Returns false on
// any failure (caller reports; the temp file is removed).
bool WriteFileDurably(const fs::path& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  bool synced = ::fsync(fd) == 0;
  return (::close(fd) == 0) && synced;
}

// Fsyncs a directory so a just-committed rename within it survives a system
// crash, not merely a process crash.
void SyncDirectory(const fs::path& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Result<std::string> FileHandle::Read(int64_t offset, int64_t length) const {
  if (blob_ == nullptr) {
    return Status::FailedPrecondition("read on invalid handle");
  }
  // Overflow-safe bounds check: offset/length come from untrusted footers,
  // so `offset + length` must never be computed on hostile values.
  const int64_t size = static_cast<int64_t>(blob_->size());
  if (offset < 0 || length < 0 || offset > size || length > size - offset) {
    return Status::OutOfRange("read [" + std::to_string(offset) + ", +" +
                              std::to_string(length) + ") beyond file of " +
                              std::to_string(blob_->size()) + " bytes");
  }
  return blob_->substr(static_cast<size_t>(offset), static_cast<size_t>(length));
}

const std::string& FileHandle::Contents() const {
  MSD_CHECK(blob_ != nullptr);
  return *blob_;
}

ObjectStore::ObjectStore(std::string root_dir, MemoryAccountant* accountant)
    : accountant_(accountant), root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);  // surfaced on first Put if it failed
}

Result<std::string> ObjectStore::DiskPathFor(const std::string& name) const {
  if (name.empty() || name.front() == '/') {
    return Status::InvalidArgument("blob name must be a relative path: '" + name + "'");
  }
  fs::path rel(name);
  for (const fs::path& part : rel) {
    if (part == ".." || part == ".") {
      return Status::InvalidArgument("blob name must not contain '.' or '..': '" + name + "'");
    }
    if (IsStagingFile(part.string())) {
      return Status::InvalidArgument("blob name collides with staging prefix: '" + name + "'");
    }
  }
  return (fs::path(root_) / rel).string();
}

Status ObjectStore::Put(const std::string& name, std::string bytes) {
  // Stage fully before publishing: the blob is built (and, on disk, written
  // to a hidden temp file) outside any reader-visible state, then made
  // visible in one atomic step — map swap in memory, rename(2) on disk.
  auto blob = std::make_shared<const std::string>(std::move(bytes));
  if (disk_backed()) {
    Result<std::string> path = DiskPathFor(name);
    if (!path.ok()) {
      return path.status();
    }
    fs::path final_path(path.value());
    std::error_code ec;
    fs::create_directories(final_path.parent_path(), ec);
    if (ec) {
      return Status::Internal("mkdir for blob " + name + ": " + ec.message());
    }
    // Unique temp in the same directory so the rename cannot cross devices.
    static std::atomic<uint64_t> counter{0};
    fs::path tmp_path = final_path.parent_path() /
                        (std::string(kStagingPrefix) + final_path.filename().string() + "." +
                         std::to_string(counter.fetch_add(1)));
    // Stage + fsync before publishing: the guarantee must hold across a
    // system crash (power loss), not just a process crash — an unsynced
    // rename could otherwise commit metadata naming a file whose data never
    // reached the disk, tearing the single in-place LATEST pointer.
    if (!WriteFileDurably(tmp_path, *blob)) {
      fs::remove(tmp_path, ec);
      return Status::Internal("cannot stage blob " + name + " at " + tmp_path.string());
    }
    // Publish rename and cache insert commit under one lock, so concurrent
    // Puts to the same name leave cache and disk agreeing on the winner
    // (staging above stays unlocked — temp names are unique).
    std::lock_guard<std::mutex> lock(mutex_);
    fs::rename(tmp_path, final_path, ec);  // atomic publish
    if (ec) {
      std::error_code rename_ec = ec;  // keep the real cause; cleanup may clear ec
      fs::remove(tmp_path, ec);
      return Status::Internal("publish rename for blob " + name + ": " + rename_ec.message());
    }
    SyncDirectory(final_path.parent_path());  // make the rename itself durable
    blobs_[name] = std::move(blob);
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[name] = std::move(blob);
  return Status::Ok();
}

bool ObjectStore::Exists(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (blobs_.find(name) != blobs_.end()) {
      return true;
    }
  }
  if (disk_backed()) {
    Result<std::string> path = DiskPathFor(name);
    return path.ok() && fs::is_regular_file(path.value());
  }
  return false;
}

Status ObjectStore::Delete(const std::string& name) {
  bool erased;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    erased = blobs_.erase(name) > 0;
  }
  if (disk_backed()) {
    Result<std::string> path = DiskPathFor(name);
    if (path.ok()) {
      std::error_code ec;
      erased = fs::remove(path.value(), ec) || erased;
      // Prune directories the delete emptied, up to (not including) the
      // root — otherwise bulk deletes (checkpoint retention GC) leave one
      // empty ckpt-<seq>/ tree per generation ever written. Best effort: a
      // concurrent writer re-creating the directory just wins the race.
      // Trailing separators are stripped before comparing, or a root of
      // "/data/ckpts/" would never equal the walked parent "/data/ckpts"
      // and the walk would delete the store root and keep ascending.
      std::string root_str = root_;
      while (root_str.size() > 1 && root_str.back() == fs::path::preferred_separator) {
        root_str.pop_back();
      }
      const fs::path root(root_str);
      fs::path parent = fs::path(path.value()).parent_path();
      while (parent != root && !parent.empty() && parent != parent.root_path() &&
             fs::is_empty(parent, ec) && !ec) {
        if (!fs::remove(parent, ec) || ec) {
          break;
        }
        parent = parent.parent_path();
      }
    }
  }
  if (!erased) {
    return Status::NotFound("no blob named " + name);
  }
  return Status::Ok();
}

std::vector<std::string> ObjectStore::List(const std::string& prefix) const {
  std::vector<std::string> names;
  if (disk_backed()) {
    // The filesystem is authoritative (another process may have written).
    std::error_code ec;
    fs::recursive_directory_iterator it(root_, ec);
    if (!ec) {
      for (const fs::directory_entry& entry : it) {
        if (!entry.is_regular_file(ec) || IsStagingFile(entry.path().filename().string())) {
          continue;
        }
        std::string name = fs::relative(entry.path(), root_, ec).generic_string();
        if (!ec && name.rfind(prefix, 0) == 0) {
          names.push_back(std::move(name));
        }
      }
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, blob] : blobs_) {
      if (name.rfind(prefix, 0) == 0) {
        names.push_back(name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

int64_t ObjectStore::TotalBytes() const {
  if (disk_backed()) {
    int64_t total = 0;
    std::error_code ec;
    fs::recursive_directory_iterator it(root_, ec);
    if (!ec) {
      for (const fs::directory_entry& entry : it) {
        if (entry.is_regular_file(ec) && !IsStagingFile(entry.path().filename().string())) {
          uintmax_t size = entry.file_size(ec);
          if (!ec) {  // file may vanish between iteration and stat
            total += static_cast<int64_t>(size);
          }
        }
      }
    }
    return total;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [name, blob] : blobs_) {
    total += static_cast<int64_t>(blob->size());
  }
  return total;
}

Result<std::shared_ptr<const std::string>> ObjectStore::FindBlob(
    const std::string& name) const {
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = blobs_.find(name);
    if (it != blobs_.end()) {
      blob = it->second;
    }
  }
  if (blob == nullptr && disk_backed()) {
    // Lazy load from disk into the cache (e.g. a checkpoint written by an
    // earlier process).
    Result<std::string> path = DiskPathFor(name);
    if (!path.ok()) {
      return path.status();
    }
    std::ifstream in(path.value(), std::ios::binary);
    if (in) {
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      blob = std::make_shared<const std::string>(std::move(bytes));
      std::lock_guard<std::mutex> lock(mutex_);
      blobs_[name] = blob;
    }
  }
  if (blob == nullptr) {
    return Status::NotFound("no blob named " + name);
  }
  return blob;
}

Result<std::string> ObjectStore::Get(const std::string& name, int64_t offset,
                                     int64_t length) const {
  Result<std::shared_ptr<const std::string>> blob = FindBlob(name);
  if (!blob.ok()) {
    return blob.status();
  }
  const std::string& bytes = **blob;
  // Overflow-safe: a corrupt MSDF footer can carry offsets near INT64_MAX,
  // and `offset + length` on those is UB before the comparison ever runs.
  const int64_t size = static_cast<int64_t>(bytes.size());
  if (offset < 0 || length < 0 || offset > size || length > size - offset) {
    return Status::OutOfRange("get [" + std::to_string(offset) + ", +" +
                              std::to_string(length) + ") beyond blob " + name + " of " +
                              std::to_string(bytes.size()) + " bytes");
  }
  return bytes.substr(static_cast<size_t>(offset), static_cast<size_t>(length));
}

Result<int64_t> ObjectStore::SizeOf(const std::string& name) const {
  Result<std::shared_ptr<const std::string>> blob = FindBlob(name);
  if (!blob.ok()) {
    return blob.status();
  }
  return static_cast<int64_t>((*blob)->size());
}

Result<FileHandle> ObjectStore::Open(const std::string& name,
                                     MemoryAccountant::NodeId node) const {
  Result<std::shared_ptr<const std::string>> found = FindBlob(name);
  if (!found.ok()) {
    return found.status();
  }
  std::shared_ptr<const std::string> blob = std::move(found.value());
  FileHandle handle;
  handle.name_ = name;
  handle.blob_ = std::move(blob);
  handle.socket_charge_ = MemCharge(accountant_, node, MemCategory::kFileSocket,
                                    kSocketBufferBytes);
  return handle;
}

}  // namespace msd
