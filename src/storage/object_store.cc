#include "src/storage/object_store.h"

#include <algorithm>

namespace msd {

Result<std::string> FileHandle::Read(int64_t offset, int64_t length) const {
  if (blob_ == nullptr) {
    return Status::FailedPrecondition("read on invalid handle");
  }
  if (offset < 0 || length < 0 || offset + length > static_cast<int64_t>(blob_->size())) {
    return Status::OutOfRange("read [" + std::to_string(offset) + ", " +
                              std::to_string(offset + length) + ") beyond file of " +
                              std::to_string(blob_->size()) + " bytes");
  }
  return blob_->substr(static_cast<size_t>(offset), static_cast<size_t>(length));
}

const std::string& FileHandle::Contents() const {
  MSD_CHECK(blob_ != nullptr);
  return *blob_;
}

Status ObjectStore::Put(const std::string& name, std::string bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[name] = std::make_shared<const std::string>(std::move(bytes));
  return Status::Ok();
}

bool ObjectStore::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.find(name) != blobs_.end();
}

Status ObjectStore::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (blobs_.erase(name) == 0) {
    return Status::NotFound("no blob named " + name);
  }
  return Status::Ok();
}

std::vector<std::string> ObjectStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, blob] : blobs_) {
    if (name.rfind(prefix, 0) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int64_t ObjectStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [name, blob] : blobs_) {
    total += static_cast<int64_t>(blob->size());
  }
  return total;
}

Result<FileHandle> ObjectStore::Open(const std::string& name,
                                     MemoryAccountant::NodeId node) const {
  std::shared_ptr<const std::string> blob;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = blobs_.find(name);
    if (it == blobs_.end()) {
      return Status::NotFound("no blob named " + name);
    }
    blob = it->second;
  }
  FileHandle handle;
  handle.name_ = name;
  handle.blob_ = std::move(blob);
  handle.socket_charge_ = MemCharge(accountant_, node, MemCategory::kFileSocket,
                                    kSocketBufferBytes);
  return handle;
}

}  // namespace msd
