#include "src/service/shared_plane.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/data/synthetic.h"
#include "src/storage/wire.h"
#include "src/telemetry/bridge.h"

namespace msd {
namespace {

// Everything that determines a materialized source's bytes on store: the full
// SourceSpec, the write seed, and the row-group sizing. Two corpora agreeing
// on all of it produce byte-identical files (WriteSourceFiles is seeded
// per-source), so a matching fingerprint means the copy already on store IS
// the requested one.
uint64_t SourceFingerprint(const SourceSpec& spec, uint64_t seed,
                           const MsdfWriteOptions& options) {
  WireWriter w;
  w.PutU64(seed);
  w.PutI64(options.target_row_group_bytes);
  w.PutU32(static_cast<uint32_t>(spec.source_id));
  w.PutBytes(spec.name);
  w.PutU8(static_cast<uint8_t>(spec.modality));
  w.PutF64(spec.transform_cost_multiplier);
  w.PutI64(spec.num_files);
  w.PutI64(spec.rows_per_file);
  w.PutU32(static_cast<uint32_t>(spec.text_bucket_weights.size()));
  for (double v : spec.text_bucket_weights) {
    w.PutF64(v);
  }
  w.PutU32(static_cast<uint32_t>(spec.image_bucket_weights.size()));
  for (double v : spec.image_bucket_weights) {
    w.PutF64(v);
  }
  return Fnv1a64(w.buffer());
}

}  // namespace

SharedIoPlane::SharedIoPlane(SharedIoPlaneConfig config) : config_(std::move(config)) {
  MSD_CHECK(config_.cache_bytes > 0);
  MSD_CHECK(config_.max_inflight > 0);
  remote_store_ = std::make_unique<LatencyInjectingStore>(
      &store_, RemoteStorageParams{
                   .get_latency = config_.storage_get_latency,
                   .bandwidth_bytes_per_sec = config_.storage_bandwidth_bytes_per_sec});
  if (!config_.cache_spill_dir.empty()) {
    cache_spill_store_ = std::make_unique<ObjectStore>(config_.cache_spill_dir);
  }
  if (!config_.durable_gcs_dir.empty()) {
    gcs_store_ = std::make_unique<ObjectStore>(config_.durable_gcs_dir);
  }
  cache_ = std::make_unique<BlockCache>(BlockCache::Config{
      .capacity_bytes = config_.cache_bytes,
      .shards = config_.cache_shards,
      .spill = cache_spill_store_.get()});
  if (config_.telemetry_enabled) {
    metrics_ = std::make_unique<MetricsRegistry>();
    if (config_.trace_ring_spans > 0) {
      tracer_ = std::make_unique<StepTracer>(static_cast<size_t>(config_.trace_ring_spans));
    }
  }
  IoScheduler::Config io_config;
  io_config.threads = config_.io_threads > 0
                          ? config_.io_threads
                          : static_cast<size_t>(std::clamp(config_.max_inflight, 4, 32));
  io_config.max_inflight = config_.max_inflight;
  io_config.retry = config_.retry;
  io_config.hedge = config_.hedge;
  io_config.tracer = tracer_.get();
  io_ = std::make_unique<IoScheduler>(remote_store_.get(), cache_.get(), io_config);
  if (metrics_ != nullptr) {
    // The plane-wide collector: cache + scheduler aggregate AND every
    // tenant's slice from one SnapshotAll pass each — so the exported slices
    // always sum to the aggregate, even while tenants stream — plus the
    // backing-store, per-tenant chaos, and payload-plane counters.
    collector_ = metrics_->AddCollector([this](std::vector<MetricPoint>* out) {
      BlockCache::Stats cache_agg;
      std::map<IoTenantId, BlockCache::Stats> cache_tenants;
      cache_->SnapshotAll(&cache_agg, &cache_tenants);
      AppendCacheMetrics(cache_agg, kMetricNoTenant, out);
      for (const auto& [id, slice] : cache_tenants) {
        AppendCacheMetrics(slice, id, out);
      }
      IoScheduler::Stats io_agg;
      std::map<IoTenantId, IoScheduler::Stats> io_tenants;
      io_->SnapshotAll(&io_agg, &io_tenants);
      AppendSchedulerMetrics(io_agg, kMetricNoTenant, out);
      for (const auto& [id, slice] : io_tenants) {
        AppendSchedulerMetrics(slice, id, out);
      }
      AppendStorageMetrics(remote_store_->gets(), remote_store_->bytes_served(),
                           kMetricNoTenant, out);
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [id, record] : tenants_) {
          if (record.fault_store != nullptr) {
            AppendFaultMetrics(record.fault_store->faults_injected(),
                               record.fault_store->corruptions_injected(),
                               record.fault_store->brownout_failures(), id, out);
          }
        }
      }
      AppendPayloadMetrics(out);
      AppendLoggingMetrics(out);
    });
  }
}

SharedIoPlane::~SharedIoPlane() {
  if (metrics_ != nullptr && collector_ >= 0) {
    // Block out any in-flight scrape before teardown starts: the collector
    // reads cache_/io_/tenants_, all of which die below.
    metrics_->RemoveCollector(collector_);
  }
  // io_ is destroyed first by member order; its destructor drains the worker
  // pools, after which the tenant fault stores are safe to free.
}

Result<int64_t> SharedIoPlane::MaterializeCorpus(const CorpusSpec& corpus, uint64_t seed,
                                                 const MsdfWriteOptions& write_options) {
  int64_t rows = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const SourceSpec& spec : corpus.sources) {
    const uint64_t fp = SourceFingerprint(spec, seed, write_options);
    auto it = materialized_.find(spec.name);
    if (it != materialized_.end()) {
      if (it->second != fp) {
        return Status::InvalidArgument(
            "source '" + spec.name +
            "' already materialized with a different spec/seed: co-hosted "
            "corpora sharing a source name must agree on its definition");
      }
      // Byte-identical copy already on store — the cross-job dedup case.
      rows += spec.num_files * spec.rows_per_file;
      continue;
    }
    // Write through the base store: materialization is control-plane work and
    // must not count as backing Gets (writes are unfaulted/unlatencied anyway).
    MSD_RETURN_IF_ERROR(WriteSourceFiles(store_, spec, seed, write_options));
    materialized_.emplace(spec.name, fp);
    rows += spec.num_files * spec.rows_per_file;
  }
  return rows;
}

Result<IoTenantId> SharedIoPlane::AddTenant(const std::string& name,
                                            const TenantQuota& quota,
                                            FaultSchedule faults) {
  if (quota.weight <= 0.0) {
    return Status::InvalidArgument("tenant '" + name + "': fair-share weight must be > 0");
  }
  if (quota.cache_bytes < 0 || quota.max_inflight_gets < 0) {
    return Status::InvalidArgument("tenant '" + name + "': negative quota");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const IoTenantId id = next_tenant_++;
  TenantRecord record;
  record.name = name;
  record.quota = quota;
  if (faults.enabled()) {
    // Private chaos route: fault(latency(base)), same stacking as an owned
    // session, but scoped so the injected failures reach only this tenant.
    record.fault_store =
        std::make_unique<FaultInjectingStore>(remote_store_.get(), faults);
  }
  IoScheduler::TenantOptions options;
  options.weight = quota.weight;
  options.max_inflight = quota.max_inflight_gets;
  options.store = record.fault_store.get();  // nullptr = shared coalescing route
  io_->RegisterTenant(id, options);
  if (quota.cache_bytes > 0) {
    cache_->RegisterTenant(id, quota.cache_bytes);
  }
  tenants_.emplace(id, std::move(record));
  return id;
}

void SharedIoPlane::DrainAndRemoveTenant(IoTenantId tenant) {
  // Drain outside mu_: UnregisterTenant blocks until the tenant's queued,
  // running, and hedged Gets are gone, and other tenants must be able to
  // register/look up stores meanwhile.
  io_->UnregisterTenant(tenant);
  cache_->RemoveTenant(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.erase(tenant);  // frees the fault store — safe, tenant is drained
}

ObjectStore* SharedIoPlane::loader_store(IoTenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.fault_store != nullptr) {
    return it->second.fault_store.get();
  }
  return remote_store_.get();
}

FaultInjectingStore* SharedIoPlane::fault_store(IoTenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.fault_store.get() : nullptr;
}

}  // namespace msd
