// DataService: the multi-tenant dataloader control plane.
//
// Hosts N independent Sessions — different corpora, meshes, seeds — on ONE
// SharedIoPlane, which is the paper's deployment shape: a dataloader service
// where concurrent training jobs share the I/O tier (cache + scheduler +
// backing store) instead of each paying for their own. The service owns the
// tenant lifecycle end to end:
//
//   RegisterTenant(name, {session options, quota, optional faults})
//     -> plane tenant id allocated (weight/cache-budget/inflight quotas
//        installed), the tenant's corpus materialized-or-deduped into the
//        shared store, its Session created bound to the plane, its durable
//        GCS state namespaced under "gcs/<name>/".
//   session(name) -> the live Session; drive it like any owned session.
//   RemoveTenant(name)
//     -> Session destroyed (stops its pipeline, drains its in-flight reads),
//        then the plane drains + forgets the tenant. Other tenants never
//        observe the departure beyond freed cache bytes and Get slots.
//
// Isolation properties (tests/service_test.cc): per-tenant fault injection
// never fails a healthy neighbour's Gets (private scheduler routes); a
// scan-heavy tenant is throttled to its fair share, not the whole pipe; a
// cache-hungry tenant evicts only its own budgeted bytes; and every tenant's
// batch stream stays byte-identical to the same job running alone.
#ifndef SRC_SERVICE_DATA_SERVICE_H_
#define SRC_SERVICE_DATA_SERVICE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/service/shared_plane.h"

namespace msd {

class DataService {
 public:
  // Everything one tenant brings: its job definition plus its resource
  // envelope on the shared plane.
  struct TenantConfig {
    // The job itself (corpus, mesh, seed, pipeline knobs). Fields that would
    // stand up a private I/O plane (block_cache_bytes, cache_spill_dir,
    // storage latency/faults, gcs_spill_dir) must stay unset — the service
    // rejects them, because the plane provides all of that shared.
    Session::Options session;
    TenantQuota quota;
    // Chaos scoped to this tenant's backing reads only.
    FaultSchedule storage_faults;
  };

  // One tenant's slice of the shared plane's counters, plus the aggregate
  // context needed to interpret it.
  struct TenantStats {
    IoTenantId id = kDefaultIoTenant;
    BlockCache::Stats cache;       // attributed to this tenant
    IoScheduler::Stats scheduler;  // attributed to this tenant
  };

  explicit DataService(SharedIoPlaneConfig plane_config);
  // Destroys remaining Sessions first (member order), then the plane.
  ~DataService();

  DataService(const DataService&) = delete;
  DataService& operator=(const DataService&) = delete;

  // Registers the tenant on the plane, materializes (or dedups) its corpus,
  // and boots its Session bound to the shared cache + scheduler. `name` keys
  // the tenant and namespaces its durable GCS state.
  Status RegisterTenant(const std::string& name, TenantConfig config);

  // Tears the tenant down: Session destruction drains its pipeline and
  // in-flight reads, then the plane forgets its queues, budget, and fault
  // route. No-op error if the tenant is unknown.
  Status RemoveTenant(const std::string& name);

  // The tenant's live Session (nullptr if unknown). The pointer stays valid
  // until RemoveTenant / service destruction.
  Session* session(const std::string& name);

  Result<TenantStats> tenant_stats(const std::string& name) const;
  std::vector<std::string> tenant_names() const;

  // Client-fed mixture re-weighting for one tenant (operator surface of
  // Session::UpdateMixture). NotFound for unknown tenants; FailedPrecondition
  // when the tenant's session has no dynamic mixture schedule.
  Status UpdateTenantMixture(const std::string& name, int64_t effective_step,
                             std::vector<double> weights);

  // ---- Diagnosis surface (src/telemetry/health.h) ----

  // The tenant's current health: bottleneck verdict, recent stall breakdown,
  // anomaly states. NotFound for unknown tenants; FailedPrecondition when the
  // tenant runs without a health monitor.
  Result<HealthReport> Diagnose(const std::string& name);
  // Live-retunes the tenant's SLO policy (warmup/trigger/clear knobs);
  // learned baselines are kept.
  Status SetSloPolicy(const std::string& name, const SloPolicy& policy);
  // The recorder shared by every tenant monitor (null when the plane config
  // set no health.recorder_dir).
  FlightRecorder* recorder() { return recorder_.get(); }

  // ---- Operator export surface (src/telemetry/) ----

  // One consistent cut of the whole service: the registry's series (every
  // subsystem's bridged counters + the sessions' pipeline series) plus
  // struct-typed aggregate and per-tenant io slices for programmatic use.
  struct ServiceSnapshot {
    // Every registered series (render with msd::RenderPrometheus/RenderJson).
    TelemetrySnapshot telemetry;
    BlockCache::Stats cache;        // plane-wide aggregate
    IoScheduler::Stats scheduler;   // plane-wide aggregate
    // Per-tenant slices, keyed by tenant name. Taken from the SAME locked
    // pass as the aggregates above, so the slices always sum to them —
    // and each slice is what tenant_stats(name) reports at the same cut.
    std::map<std::string, TenantStats> tenants;
    // Per-tenant health (verdict + anomalies), for tenants running with a
    // monitor. Scrape consumers get diagnosis for free alongside the series.
    std::map<std::string, HealthReport> health;
    // Backing Gets the shared store served, across all tenants.
    int64_t backing_gets = 0;
  };

  ServiceSnapshot MetricsSnapshot() const;
  // Prometheus text exposition / JSON of the registry's current snapshot.
  // Empty registry (plane telemetry off) renders headers-only output.
  std::string RenderPrometheus() const;
  std::string RenderJson() const;
  // Writes the plane's trace ring (every tenant's spans, one timeline) as
  // Chrome trace-event JSON. Fails when plane tracing is off.
  Status DumpTrace(const std::string& path) const;

  // Periodic scrape hook: every `interval_ms` a background thread hands `fn`
  // a fresh MetricsSnapshot() — wire it to a Prometheus pushgateway, a log
  // shipper, or a test probe. One scrape at a time; StopScrape() (or
  // destruction) joins the thread.
  using ScrapeFn = std::function<void(const ServiceSnapshot&)>;
  Status StartScrape(int64_t interval_ms, ScrapeFn fn);
  void StopScrape();

  SharedIoPlane* plane() { return plane_.get(); }
  // Total backing Gets the shared store served — across all tenants.
  int64_t backing_gets() const { return plane_->backing_gets(); }

 private:
  struct TenantRecord {
    IoTenantId id = kDefaultIoTenant;
    std::unique_ptr<Session> session;
  };

  // Sessions (tenants_) are declared after the plane and therefore destroyed
  // before it — each ~Session drains its own in-flight reads against the
  // still-live scheduler.
  std::unique_ptr<SharedIoPlane> plane_;
  // Plane-default health options tenants adopt (see SharedIoPlaneConfig) and
  // the one recorder their monitors share. Declared before tenants_ so it
  // outlives every monitor holding the shared_ptr.
  HealthOptions default_health_;
  std::shared_ptr<FlightRecorder> recorder_;
  mutable std::mutex mu_;
  std::map<std::string, TenantRecord> tenants_;

  // Scrape thread state (StartScrape/StopScrape).
  std::mutex scrape_mu_;
  std::condition_variable scrape_cv_;
  bool scrape_stop_ = false;
  std::thread scrape_thread_;
};

}  // namespace msd

#endif  // SRC_SERVICE_DATA_SERVICE_H_
