// SharedIoPlane: the one I/O plane many co-hosted training jobs share.
//
// The paper's production deployment is a dataloader *service*: N concurrent
// jobs, one data plane. This class owns that plane — the backing ObjectStore
// (with the corpus materialized exactly once per distinct source), the
// latency decorator that makes it "remote" and counts backing Gets, the
// multi-tenant BlockCache, and the fair-share IoScheduler — and hands
// Sessions non-owning views of it (Session::Options::shared_plane).
//
// Tenant lifecycle:
//   AddTenant(name, quota[, faults])  -> IoTenantId
//     registers the tenant's fair-share weight + in-flight cap with the
//     scheduler, its cache-byte budget with the cache, and (optionally) a
//     private FaultInjectingStore route so chaos injected into this tenant
//     can never fail another tenant's Gets.
//   DrainAndRemoveTenant(id)
//     blocks until the tenant has no queued/running/hedged Gets, evicts its
//     cache footprint, forgets its scheduler state, and only then frees its
//     fault decorator. Call after the tenant's Session is destroyed.
//
// What co-hosting buys (bench_multitenant): jobs reading overlapping corpora
// share one cached copy and coalesce in-flight Gets across session
// boundaries, so N co-hosted jobs issue fewer backing Gets at less total
// cache memory than N isolated ones — while each job's byte stream stays
// identical to its solo run (the cache serves the same bytes a Get would).
#ifndef SRC_SERVICE_SHARED_PLANE_H_
#define SRC_SERVICE_SHARED_PLANE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/units.h"
#include "src/data/source_spec.h"
#include "src/io/block_cache.h"
#include "src/io/fault_injecting_store.h"
#include "src/io/io_scheduler.h"
#include "src/io/latency_store.h"
#include "src/storage/columnar.h"
#include "src/storage/memory_model.h"
#include "src/storage/object_store.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace msd {

// Per-tenant resource envelope, enforced by the shared cache + scheduler.
struct TenantQuota {
  // Fair-share weight for backing Gets (IoScheduler::TenantOptions::weight):
  // under contention a weight-2 tenant gets twice the Get slots of a
  // weight-1 one. Must be > 0.
  double weight = 1.0;
  // Cache-byte budget: over it, eviction pressure removes this tenant's OWN
  // least-recent blocks (never a neighbour's). 0 = no per-tenant budget —
  // the tenant competes only under the global capacity.
  int64_t cache_bytes = 0;
  // Cap on this tenant's concurrently running backing Gets. 0 = only the
  // plane-wide max_inflight bounds it.
  int32_t max_inflight_gets = 0;
};

struct SharedIoPlaneConfig {
  // Global BlockCache capacity shared by every tenant.
  int64_t cache_bytes = 256 * kMiB;
  int32_t cache_shards = 8;
  // Optional disk tier for evicted blocks.
  std::string cache_spill_dir;
  // Scheduler pool size; 0 derives it from max_inflight.
  size_t io_threads = 0;
  // Plane-wide bound on concurrent backing Gets.
  int32_t max_inflight = 16;
  IoScheduler::RetryPolicy retry;
  IoScheduler::HedgePolicy hedge;
  // Simulated remote storage: microseconds charged per backing Get. 0 keeps
  // the latency decorator installed as a pure Get counter (zero delay), so
  // backing_gets() is always meaningful.
  SimTime storage_get_latency = 0;
  double storage_bandwidth_bytes_per_sec = 0;  // <= 0 disables the term
  // Directory for the shared durable GCS store; each tenant's Session
  // attaches it under its own "gcs/<namespace>/" prefix, so heartbeat
  // journals, quarantine state, and watchdog snapshots never cross tenants.
  // Empty = tenants get no plane-provided durable GCS.
  std::string durable_gcs_dir;
  // ---- Telemetry (src/telemetry/) ----
  // One registry + one trace ring for the whole plane: every tenant's spans
  // interleave in a single timeline and MetricsSnapshot() renders consistent
  // per-tenant slices. Sessions bound to this plane adopt both.
  bool telemetry_enabled = true;
  // Spans retained before the oldest are overwritten; sized for several
  // tenants' worth of step + io spans. 0 = metrics only, no tracing.
  int64_t trace_ring_spans = 8192;
  // Default diagnosis-plane options every tenant adopts unless its own
  // Session::Options.health is enabled. When health.recorder_dir is set the
  // DataService stands up ONE FlightRecorder shared by all tenant monitors,
  // so a plane-wide incident writes one bundle, not one per tenant.
  HealthOptions health;
};

class SharedIoPlane {
 public:
  explicit SharedIoPlane(SharedIoPlaneConfig config);
  // Tear down every Session using this plane first; the destructor drains
  // the scheduler but cannot wait for foreign actors.
  ~SharedIoPlane();

  SharedIoPlane(const SharedIoPlane&) = delete;
  SharedIoPlane& operator=(const SharedIoPlane&) = delete;

  // Materializes `corpus` into the shared store, writing each distinct
  // source exactly once: a source whose (spec, seed, row-group sizing)
  // fingerprint matches an already-materialized one is skipped — the bytes
  // on store are already identical, which is the cross-job dedup premise.
  // A name collision with a DIFFERENT fingerprint is an error (two jobs
  // would silently read each other's data). Returns the corpus row count.
  Result<int64_t> MaterializeCorpus(const CorpusSpec& corpus, uint64_t seed,
                                    const MsdfWriteOptions& write_options);

  // Registers a tenant: fair-share weight + inflight cap on the scheduler,
  // cache budget on the cache, and — when `faults` is enabled — a private
  // fault-injecting route wrapping the shared remote store (fault(latency(
  // base)), same stacking as single-tenant chaos sessions). Returns the id
  // to pass to SessionBuilder::WithSharedIoPlane.
  Result<IoTenantId> AddTenant(const std::string& name, const TenantQuota& quota,
                               FaultSchedule faults = {});

  // Drains the tenant out of the scheduler (no queued/running/hedged Gets),
  // evicts its cache footprint, and frees its fault decorator. The tenant's
  // Session must already be destroyed (its destructor stops all traffic).
  void DrainAndRemoveTenant(IoTenantId tenant);

  // The store a tenant's loaders read through: its private fault route if it
  // registered one, else the shared (latency-counting) remote store.
  ObjectStore* loader_store(IoTenantId tenant);
  // The tenant's fault decorator, for scripting brownouts; nullptr if the
  // tenant registered without faults.
  FaultInjectingStore* fault_store(IoTenantId tenant);

  BlockCache* cache() { return cache_.get(); }
  IoScheduler* scheduler() { return io_.get(); }
  LatencyInjectingStore* remote_store() { return remote_store_.get(); }
  // Plane-wide telemetry. The plane's collector exports the cache/scheduler
  // aggregate plus every tenant's slice (one SnapshotAll pass each, so the
  // slices always sum to the aggregate) and the storage/fault/payload
  // counters; plane-bound Sessions add their pipeline/quarantine series.
  // Null when config.telemetry_enabled is false.
  MetricsRegistry* metrics() { return metrics_.get(); }
  // The plane-wide trace ring (null when tracing is off).
  StepTracer* tracer() { return tracer_.get(); }
  // Shared durable GCS store (nullptr without durable_gcs_dir).
  ObjectStore* gcs_store() { return gcs_store_.get(); }
  const SharedIoPlaneConfig& config() const { return config_; }
  const MemoryAccountant& memory() const { return memory_; }

  // Backing Gets the plane's remote store actually served — the number
  // co-hosting exists to shrink (every cache hit and every cross-session
  // coalesce is a Get that never reaches here).
  int64_t backing_gets() const { return remote_store_->gets(); }
  BlockCache::Stats cache_stats() const { return cache_->stats(); }
  BlockCache::Stats tenant_cache_stats(IoTenantId tenant) const {
    return cache_->tenant_stats(tenant);
  }
  IoScheduler::Stats scheduler_stats() const { return io_->stats(); }
  IoScheduler::Stats tenant_scheduler_stats(IoTenantId tenant) const {
    return io_->tenant_stats(tenant);
  }

 private:
  struct TenantRecord {
    std::string name;
    TenantQuota quota;
    // Private chaos route; lives until DrainAndRemoveTenant so in-flight
    // (and hedged) Gets can finish against it.
    std::unique_ptr<FaultInjectingStore> fault_store;
  };

  SharedIoPlaneConfig config_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};  // the shared backing corpus store
  // Always installed, even at zero latency: its Get counter is the
  // denominator of every dedup claim the service makes.
  std::unique_ptr<LatencyInjectingStore> remote_store_;
  std::unique_ptr<ObjectStore> cache_spill_store_;
  std::unique_ptr<ObjectStore> gcs_store_;
  // Telemetry plane. Declared before cache_/io_ so the scheduler holding the
  // tracer pointer is destroyed first; the collector reading cache_/io_ is
  // explicitly removed in the destructor before either dies.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<StepTracer> tracer_;
  int64_t collector_ = -1;  // AddCollector handle (-1 = none)
  std::unique_ptr<BlockCache> cache_;

  mutable std::mutex mu_;
  IoTenantId next_tenant_ = 1;  // 0 is the default (non-service) tenant
  std::map<IoTenantId, TenantRecord> tenants_;
  // Source name -> (spec, seed, sizing) fingerprint of the materialized copy.
  std::unordered_map<std::string, uint64_t> materialized_;

  // Declared after the tenant records: the scheduler is destroyed FIRST, so
  // its workers (which may hold tenant fault-store pointers) are joined
  // before any store they read from dies.
  std::unique_ptr<IoScheduler> io_;
};

}  // namespace msd

#endif  // SRC_SERVICE_SHARED_PLANE_H_
