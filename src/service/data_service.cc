#include "src/service/data_service.h"

#include <chrono>
#include <utility>

namespace msd {
namespace {

// The plane provides the I/O tier; a tenant's Session::Options must not try
// to stand up a private one underneath it.
Status ValidateTenantSession(const Session::Options& s) {
  if (s.shared_plane != nullptr || s.io_tenant != kDefaultIoTenant) {
    return Status::InvalidArgument(
        "tenant session options must leave the shared-plane binding unset; "
        "the service installs it");
  }
  if (s.block_cache_bytes > 0 || !s.cache_spill_dir.empty()) {
    return Status::InvalidArgument(
        "tenant sessions use the plane's shared block cache; per-session "
        "block_cache_bytes/cache_spill_dir are not allowed");
  }
  if (s.storage_get_latency > 0) {
    return Status::InvalidArgument(
        "storage latency is a plane-wide property (SharedIoPlaneConfig); "
        "per-tenant storage_get_latency is not allowed");
  }
  if (s.storage_faults.enabled()) {
    return Status::InvalidArgument(
        "tenant storage faults go through TenantConfig::storage_faults (a "
        "private scheduler route), not Session::Options");
  }
  if (!s.gcs_spill_dir.empty()) {
    return Status::InvalidArgument(
        "tenant sessions share the plane's durable GCS store under a "
        "per-tenant namespace; per-session gcs_spill_dir is not allowed");
  }
  return Status::Ok();
}

}  // namespace

DataService::DataService(SharedIoPlaneConfig plane_config)
    : plane_(std::make_unique<SharedIoPlane>(plane_config)),
      default_health_(std::move(plane_config.health)) {
  if (!default_health_.recorder_dir.empty()) {
    // One recorder for the whole plane: every tenant monitor shares it, so
    // its global rate limit turns a plane-wide incident into one bundle.
    recorder_ = std::make_shared<FlightRecorder>(FlightRecorder::Config{
        .dir = default_health_.recorder_dir,
        .keep_bundles = default_health_.recorder_keep_bundles,
        .min_interval_ms = default_health_.recorder_min_interval_ms});
    default_health_.recorder = recorder_;
  }
}

// Member order tears tenants_ (the Sessions) down before plane_; each
// ~Session drains its in-flight reads against the still-live scheduler.
// The scrape thread goes first of all — it snapshots everything below.
DataService::~DataService() { StopScrape(); }

Status DataService::RegisterTenant(const std::string& name, TenantConfig config) {
  MSD_RETURN_IF_ERROR(ValidateTenantSession(config.session));
  {
    // Reserve the name first (session boot is slow; don't hold mu_ across it).
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tenants_.try_emplace(name);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("tenant '" + name + "' is already registered");
    }
  }
  Result<IoTenantId> id = plane_->AddTenant(name, config.quota, config.storage_faults);
  if (!id.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.erase(name);
    return id.status();
  }
  Session::Options opts = std::move(config.session);
  opts.shared_plane = plane_.get();
  opts.io_tenant = id.value();
  if (opts.gcs_namespace.empty()) {
    opts.gcs_namespace = name;
  }
  // Diagnosis: a tenant that brings its own health options keeps them; the
  // rest adopt the plane default. Either way all monitors on this plane
  // share the service recorder (one bundle per plane-wide incident).
  if (!opts.health.enabled && default_health_.enabled) {
    opts.health = default_health_;
  }
  if (opts.health.enabled && opts.health.recorder == nullptr && recorder_ != nullptr) {
    opts.health.recorder = recorder_;
  }
  Result<std::unique_ptr<Session>> session = Session::Create(std::move(opts));
  if (!session.ok()) {
    plane_->DrainAndRemoveTenant(id.value());
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.erase(name);
    return session.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  TenantRecord& record = tenants_[name];
  record.id = id.value();
  record.session = std::move(session.value());
  return Status::Ok();
}

Status DataService::RemoveTenant(const std::string& name) {
  TenantRecord record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end() || it->second.session == nullptr) {
      return Status::NotFound("tenant '" + name + "' is not registered");
    }
    record = std::move(it->second);
    tenants_.erase(it);
  }
  // Outside mu_: ~Session stops the pipeline, shuts the actors down, and
  // drains the tenant's in-flight reads; other tenants keep serving.
  record.session.reset();
  plane_->DrainAndRemoveTenant(record.id);
  return Status::Ok();
}

Session* DataService::session(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.session.get() : nullptr;
}

Result<DataService::TenantStats> DataService::tenant_stats(const std::string& name) const {
  IoTenantId id = kDefaultIoTenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end() || it->second.session == nullptr) {
      return Status::NotFound("tenant '" + name + "' is not registered");
    }
    id = it->second.id;
  }
  TenantStats stats;
  stats.id = id;
  stats.cache = plane_->tenant_cache_stats(id);
  stats.scheduler = plane_->tenant_scheduler_stats(id);
  return stats;
}

DataService::ServiceSnapshot DataService::MetricsSnapshot() const {
  ServiceSnapshot snap;
  if (plane_->metrics() != nullptr) {
    snap.telemetry = plane_->metrics()->Snapshot();
  }
  // Aggregate + every tenant slice from ONE locked pass per subsystem: the
  // slices in snap.tenants sum to snap.cache/snap.scheduler by construction,
  // with no window for a concurrent stream to tear them apart.
  std::map<IoTenantId, BlockCache::Stats> cache_tenants;
  plane_->cache()->SnapshotAll(&snap.cache, &cache_tenants);
  std::map<IoTenantId, IoScheduler::Stats> scheduler_tenants;
  plane_->scheduler()->SnapshotAll(&snap.scheduler, &scheduler_tenants);
  snap.backing_gets = plane_->backing_gets();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, record] : tenants_) {
    if (record.session == nullptr) {
      continue;  // mid-registration reservation; nothing attributed yet
    }
    TenantStats stats;
    stats.id = record.id;
    auto cache_it = cache_tenants.find(record.id);
    if (cache_it != cache_tenants.end()) {
      stats.cache = cache_it->second;
    }
    auto scheduler_it = scheduler_tenants.find(record.id);
    if (scheduler_it != scheduler_tenants.end()) {
      stats.scheduler = scheduler_it->second;
    }
    if (HealthMonitor* monitor = record.session->health(); monitor != nullptr) {
      snap.health.emplace(name, monitor->Diagnose());
    }
    snap.tenants.emplace(name, std::move(stats));
  }
  return snap;
}

Result<HealthReport> DataService::Diagnose(const std::string& name) {
  // Under mu_ the record cannot be torn down (RemoveTenant moves it out
  // under the same lock); lock order is service mu_ -> monitor mu_ with no
  // inverse path, so this cannot deadlock with a concurrent health tick.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end() || it->second.session == nullptr) {
    return Status::NotFound("tenant '" + name + "' is not registered");
  }
  HealthMonitor* monitor = it->second.session->health();
  if (monitor == nullptr) {
    return Status::FailedPrecondition("tenant '" + name +
                                      "' runs without a health monitor");
  }
  return monitor->Diagnose();
}

Status DataService::UpdateTenantMixture(const std::string& name, int64_t effective_step,
                                        std::vector<double> weights) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end() || it->second.session == nullptr) {
    return Status::NotFound("tenant '" + name + "' is not registered");
  }
  return it->second.session->UpdateMixture(effective_step, std::move(weights));
}

Status DataService::SetSloPolicy(const std::string& name, const SloPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end() || it->second.session == nullptr) {
    return Status::NotFound("tenant '" + name + "' is not registered");
  }
  HealthMonitor* monitor = it->second.session->health();
  if (monitor == nullptr) {
    return Status::FailedPrecondition("tenant '" + name +
                                      "' runs without a health monitor");
  }
  monitor->SetSloPolicy(policy);
  return Status::Ok();
}

std::string DataService::RenderPrometheus() const {
  if (plane_->metrics() == nullptr) {
    return "";
  }
  return msd::RenderPrometheus(plane_->metrics()->Snapshot());
}

std::string DataService::RenderJson() const {
  if (plane_->metrics() == nullptr) {
    return "{\"uptime_us\":0,\"metrics\":[]}";
  }
  return msd::RenderJson(plane_->metrics()->Snapshot());
}

Status DataService::DumpTrace(const std::string& path) const {
  if (plane_->tracer() == nullptr) {
    return Status::FailedPrecondition(
        "plane tracing is off (telemetry disabled or trace_ring_spans = 0)");
  }
  return plane_->tracer()->DumpChromeTrace(path);
}

Status DataService::StartScrape(int64_t interval_ms, ScrapeFn fn) {
  if (interval_ms <= 0) {
    return Status::InvalidArgument("scrape interval must be > 0 ms");
  }
  if (fn == nullptr) {
    return Status::InvalidArgument("scrape callback must be set");
  }
  std::lock_guard<std::mutex> lock(scrape_mu_);
  if (scrape_thread_.joinable()) {
    return Status::FailedPrecondition("a scrape is already running (StopScrape first)");
  }
  scrape_stop_ = false;
  scrape_thread_ = std::thread([this, interval_ms, fn = std::move(fn)] {
    std::unique_lock<std::mutex> lock(scrape_mu_);
    while (!scrape_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                                [this] { return scrape_stop_; })) {
      // Snapshot outside scrape_mu_ so StopScrape never waits on a slow
      // callback to observe the flag — only on the one in flight.
      lock.unlock();
      fn(MetricsSnapshot());
      lock.lock();
    }
  });
  return Status::Ok();
}

void DataService::StopScrape() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(scrape_mu_);
    if (!scrape_thread_.joinable()) {
      return;
    }
    scrape_stop_ = true;
    worker = std::move(scrape_thread_);
  }
  scrape_cv_.notify_all();
  worker.join();
}

std::vector<std::string> DataService::tenant_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, record] : tenants_) {
    if (record.session != nullptr) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace msd
