#include "src/service/data_service.h"

#include <utility>

namespace msd {
namespace {

// The plane provides the I/O tier; a tenant's Session::Options must not try
// to stand up a private one underneath it.
Status ValidateTenantSession(const Session::Options& s) {
  if (s.shared_plane != nullptr || s.io_tenant != kDefaultIoTenant) {
    return Status::InvalidArgument(
        "tenant session options must leave the shared-plane binding unset; "
        "the service installs it");
  }
  if (s.block_cache_bytes > 0 || !s.cache_spill_dir.empty()) {
    return Status::InvalidArgument(
        "tenant sessions use the plane's shared block cache; per-session "
        "block_cache_bytes/cache_spill_dir are not allowed");
  }
  if (s.storage_get_latency > 0) {
    return Status::InvalidArgument(
        "storage latency is a plane-wide property (SharedIoPlaneConfig); "
        "per-tenant storage_get_latency is not allowed");
  }
  if (s.storage_faults.enabled()) {
    return Status::InvalidArgument(
        "tenant storage faults go through TenantConfig::storage_faults (a "
        "private scheduler route), not Session::Options");
  }
  if (!s.gcs_spill_dir.empty()) {
    return Status::InvalidArgument(
        "tenant sessions share the plane's durable GCS store under a "
        "per-tenant namespace; per-session gcs_spill_dir is not allowed");
  }
  return Status::Ok();
}

}  // namespace

DataService::DataService(SharedIoPlaneConfig plane_config)
    : plane_(std::make_unique<SharedIoPlane>(std::move(plane_config))) {}

// Member order tears tenants_ (the Sessions) down before plane_; each
// ~Session drains its in-flight reads against the still-live scheduler.
DataService::~DataService() = default;

Status DataService::RegisterTenant(const std::string& name, TenantConfig config) {
  MSD_RETURN_IF_ERROR(ValidateTenantSession(config.session));
  {
    // Reserve the name first (session boot is slow; don't hold mu_ across it).
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tenants_.try_emplace(name);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("tenant '" + name + "' is already registered");
    }
  }
  Result<IoTenantId> id = plane_->AddTenant(name, config.quota, config.storage_faults);
  if (!id.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.erase(name);
    return id.status();
  }
  Session::Options opts = std::move(config.session);
  opts.shared_plane = plane_.get();
  opts.io_tenant = id.value();
  if (opts.gcs_namespace.empty()) {
    opts.gcs_namespace = name;
  }
  Result<std::unique_ptr<Session>> session = Session::Create(std::move(opts));
  if (!session.ok()) {
    plane_->DrainAndRemoveTenant(id.value());
    std::lock_guard<std::mutex> lock(mu_);
    tenants_.erase(name);
    return session.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  TenantRecord& record = tenants_[name];
  record.id = id.value();
  record.session = std::move(session.value());
  return Status::Ok();
}

Status DataService::RemoveTenant(const std::string& name) {
  TenantRecord record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end() || it->second.session == nullptr) {
      return Status::NotFound("tenant '" + name + "' is not registered");
    }
    record = std::move(it->second);
    tenants_.erase(it);
  }
  // Outside mu_: ~Session stops the pipeline, shuts the actors down, and
  // drains the tenant's in-flight reads; other tenants keep serving.
  record.session.reset();
  plane_->DrainAndRemoveTenant(record.id);
  return Status::Ok();
}

Session* DataService::session(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.session.get() : nullptr;
}

Result<DataService::TenantStats> DataService::tenant_stats(const std::string& name) const {
  IoTenantId id = kDefaultIoTenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end() || it->second.session == nullptr) {
      return Status::NotFound("tenant '" + name + "' is not registered");
    }
    id = it->second.id;
  }
  TenantStats stats;
  stats.id = id;
  stats.cache = plane_->tenant_cache_stats(id);
  stats.scheduler = plane_->tenant_scheduler_stats(id);
  return stats;
}

std::vector<std::string> DataService::tenant_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, record] : tenants_) {
    if (record.session != nullptr) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace msd
