// SourceLoader: the per-source preprocessing actor (Sec. 3).
//
// Each SourceLoader owns the file-access state for exactly one data source
// partition (sockets, footers, row-group buffers — charged to the memory
// accountant), continuously ingests rows, applies sample-level transformations
// with worker parallelism, and stages transformed samples in a read buffer.
// The Planner pulls metadata summaries from the buffer; LoadingPlans then pop
// specific samples toward Data Constructors.
#ifndef SRC_LOADER_SOURCE_LOADER_H_
#define SRC_LOADER_SOURCE_LOADER_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/actor/actor.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/data/source_spec.h"
#include "src/data/synthetic.h"
#include "src/data/transform.h"
#include "src/io/read_ahead.h"
#include "src/plan/dgraph.h"
#include "src/storage/columnar.h"
#include "src/storage/object_store.h"

namespace msd {

// Host-side footprint constants for worker scaling (Sec. 2.3 "each worker
// process maintains its execution context and prefetch buffer").
inline constexpr int64_t kWorkerContextBytes = 192 * kMiB;
inline constexpr int64_t kPrefetchPerWorkerBytes = 64 * kMiB;

struct SourceLoaderConfig {
  int32_t loader_id = 0;
  SourceSpec spec;
  // MSDF files this loader partition reads (subset of the source's files).
  std::vector<std::string> files;
  int32_t num_workers = 2;
  // Refill target: keep at least this many transformed samples buffered.
  size_t buffer_low_watermark = 128;
  MemoryAccountant::NodeId node = 0;
  // Fault-injection hook: when true, PopSamples yields without an
  // end-of-stream marker (payload-integrity failure, Sec. 6.1).
  bool inject_partial_yield = false;
  // Transformation reordering (Sec. 6.2, borrowed from Pecan): defer image
  // decoding to the Data Constructor so slices travel as compressed bytes.
  bool defer_image_decode = false;
  // Metadata-driven decode bound (multi-scale batching): > 0 stops pixel
  // decode past this many patches — a packed segment can never consume more
  // than max_seq_len of them. 0 = unbounded. Must match the constructors'
  // DataConstructorConfig::max_decode_patches for plane byte-identity.
  int32_t max_decode_patches = 0;
  // Hot-standby replica (Sec. 6.1): gets a distinct actor name and charges
  // its worker memory to the shadow-loader category (excluded from the
  // paper's measurements).
  bool is_shadow = false;
  // Overrides the derived actor name (replacement loaders must not collide
  // with the failed instance still registered in the ActorSystem).
  std::string name_override;
  // Row groups to prefetch past the read cursor (src/io/ read-ahead). Only
  // effective when the loader is built with an IoScheduler.
  int32_t read_ahead_groups = 0;
  // Remote-storage semantics without a cache: read via one ranged Get per
  // row group/footer (what an uncached Parquet reader pays) instead of
  // aliasing the whole blob. Implied by the cached mode; ignored with it.
  bool ranged_reads = false;
  // Arena-backed row decode (src/data/payload_arena.h): allocate the group's
  // Samples as one shared block and stage decoded payload bytes in per-shard
  // slabs frozen into shared buffers when the group is handed to the buffer —
  // O(1) allocations per (group, worker) instead of per row, freed as a unit
  // when the group's last sample retires. Off = one heap Sample + one frozen
  // buffer per payload per row (byte-identical output either way).
  bool arena_decode = true;
  // Tenant tag for every fetch this loader issues through a shared
  // IoScheduler (src/service/ multi-tenant plane): routes the Gets, bounds
  // them under the tenant's quota, and attributes the per-tenant stats.
  IoTenantId io_tenant = kDefaultIoTenant;
};

// Snapshot for differential checkpointing: the read cursor at the origin of
// the current buffer plus the ids consumed since then. Deterministic refill
// makes (cursor, consumed-set) sufficient to rebuild the exact buffer, so
// loaders can snapshot at a lower frequency than the Planner and bridge the
// gap via plan replay (Sec. 6.1).
struct LoaderSnapshot {
  int64_t origin_file = 0;
  int64_t origin_group = 0;
  std::vector<uint64_t> consumed_ids;
  std::string Serialize() const;
  static Result<LoaderSnapshot> Deserialize(std::string_view bytes);
};

// A batch of popped samples heading to one Data Constructor. Samples are
// shared, not copied: the loader hands over its buffered `shared_ptr`s, so a
// slice travelling through the actor system (and any retained reference on
// the constructor side) aliases the same payloads the workers materialized.
struct SampleSlice {
  int64_t step = 0;
  int32_t loader_id = -1;
  std::vector<std::shared_ptr<Sample>> samples;
  bool end_of_stream = true;  // false under partial-yield fault injection
};

class SourceLoader : public Actor {
 public:
  // With an IoScheduler the loader reads through the shared block cache
  // (coalesced with other loaders) and drives cursor-based read-ahead;
  // without one it issues direct whole-blob reads as before.
  SourceLoader(SourceLoaderConfig config, const ObjectStore* store,
               MemoryAccountant* accountant, IoScheduler* io = nullptr);
  ~SourceLoader() override;

  // Opens readers and fills the buffer to the watermark. Must run before use.
  Status Open();

  // Metadata summary of the current buffer (workflow step 4).
  BufferInfo SummaryBuffer() const;

  // The planner-facing gather: retries any deferred refill failure (see
  // PopSamples) before summarizing, and stamps the summary's io_healthy bit.
  // While the refill keeps failing the summary must not be planned over —
  // the buffer is shorter than the watermark, and planning over it would
  // fork the plan history vs an undisturbed run. Once the refill succeeds
  // the buffer is byte-identical to the undisturbed run's (refill is
  // cursor-deterministic and failure leaves no side effects), so plans
  // resume exactly where they would have been.
  BufferInfo GatherBuffer();

  // The deferred refill failure, if any (Ok when healthy).
  const Status& last_refill_error() const { return last_refill_error_; }

  // Pops the given sample ids (transformed payloads) from the buffer, then
  // refills. Unknown ids are reported as an error.
  Result<SampleSlice> PopSamples(int64_t step, const std::vector<uint64_t>& ids);

  // Differential checkpointing hooks.
  LoaderSnapshot Snapshot() const;
  Status Restore(const LoaderSnapshot& snapshot);

  // Fault injection control (payload-integrity failures, Sec. 6.1).
  void set_inject_partial_yield(bool v) { config_.inject_partial_yield = v; }

  // Observability.
  const SourceLoaderConfig& config() const { return config_; }
  size_t buffered_samples() const { return buffer_.size(); }
  SimTime total_transform_cost() const { return total_transform_cost_; }
  int64_t samples_served() const { return samples_served_; }
  // Row groups the read-ahead policy has prefetched (0 without an io layer).
  int64_t groups_prefetched() const {
    return read_ahead_ != nullptr ? read_ahead_->groups_prefetched() : 0;
  }

  // Static memory footprint of a loader with `workers` workers (contexts +
  // prefetch), excluding file states.
  static int64_t WorkerMemoryBytes(int32_t workers);

 private:
  Status RefillToWatermark();
  Status LoadNextGroup();

  SourceLoaderConfig config_;
  const ObjectStore* store_;
  MemoryAccountant* accountant_;
  IoScheduler* io_;  // nullable: cached ranged reads when present
  std::unique_ptr<ReadAhead> read_ahead_;
  std::shared_ptr<const Tokenizer> tokenizer_;
  TransformPipeline pipeline_;
  std::unique_ptr<ThreadPool> workers_;
  MemCharge worker_charge_;

  // Reader over the file at the cursor, opened lazily.
  std::optional<MsdfReader> reader_;
  int64_t reader_file_ = -1;   // which file reader_ is open on
  int64_t next_file_ = 0;      // next (file, group) to load
  int64_t next_group_ = 0;
  int64_t origin_file_ = 0;    // buffer origin: cursor when buffer was last empty
  int64_t origin_group_ = 0;
  std::deque<std::shared_ptr<Sample>> buffer_;
  std::vector<uint64_t> consumed_ids_;  // consumed since origin, in order
  // Same ids as consumed_ids_, kept as a set so refills dedup in O(1) instead
  // of rebuilding a set per row group.
  std::unordered_set<uint64_t> consumed_set_;
  SimTime total_transform_cost_ = 0;
  int64_t samples_served_ = 0;
  bool exhausted_ = false;
  // Sticky refill failure deferred out of PopSamples (the popped slice was
  // already served); cleared by the next successful refill.
  Status last_refill_error_;
};

}  // namespace msd

#endif  // SRC_LOADER_SOURCE_LOADER_H_
