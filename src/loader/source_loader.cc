#include "src/loader/source_loader.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/storage/wire.h"

namespace msd {

std::string LoaderSnapshot::Serialize() const {
  WireWriter w;
  w.Reserve(2 * sizeof(int64_t) + sizeof(uint32_t) + consumed_ids.size() * sizeof(uint64_t));
  w.PutI64(origin_file);
  w.PutI64(origin_group);
  w.PutU32(static_cast<uint32_t>(consumed_ids.size()));
  for (uint64_t id : consumed_ids) {
    w.PutU64(id);
  }
  return w.Take();
}

Result<LoaderSnapshot> LoaderSnapshot::Deserialize(std::string_view bytes) {
  WireReader r(bytes);
  LoaderSnapshot snap;
  snap.origin_file = r.GetI64();
  snap.origin_group = r.GetI64();
  uint32_t n = r.GetU32();
  if (static_cast<uint64_t>(n) * sizeof(uint64_t) > r.remaining()) {
    return Status::DataLoss("corrupt loader snapshot: id count exceeds payload");
  }
  snap.consumed_ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    snap.consumed_ids.push_back(r.GetU64());
  }
  if (!r.Ok()) {
    return Status::DataLoss("truncated loader snapshot");
  }
  return snap;
}

int64_t SourceLoader::WorkerMemoryBytes(int32_t workers) {
  return static_cast<int64_t>(workers) * (kWorkerContextBytes + kPrefetchPerWorkerBytes);
}

SourceLoader::SourceLoader(SourceLoaderConfig config, const ObjectStore* store,
                           MemoryAccountant* accountant, IoScheduler* io)
    : Actor(!config.name_override.empty()
                ? config.name_override
                : std::string(config.is_shadow ? "shadow_loader/" : "source_loader/") +
                      config.spec.name + "#" + std::to_string(config.loader_id)),
      config_(std::move(config)),
      store_(store),
      accountant_(accountant),
      io_(io),
      tokenizer_(std::make_shared<Tokenizer>()) {
  MSD_CHECK(config_.num_workers > 0);
  if (io_ != nullptr && config_.read_ahead_groups > 0) {
    read_ahead_ = std::make_unique<ReadAhead>(io_, config_.read_ahead_groups,
                                              config_.io_tenant);
  }
  if (config_.defer_image_decode) {
    // Transformation reordering: tokenize here, decode at the constructor.
    pipeline_ = TransformPipeline::Default(Modality::kText, tokenizer_);
  } else {
    pipeline_ = TransformPipeline::Default(config_.spec.modality, tokenizer_,
                                           config_.max_decode_patches);
  }
  workers_ = std::make_unique<ThreadPool>(static_cast<size_t>(config_.num_workers));
  worker_charge_ = MemCharge(
      accountant_, config_.node,
      config_.is_shadow ? MemCategory::kShadowLoader : MemCategory::kWorkerContext,
      WorkerMemoryBytes(config_.num_workers));
}

SourceLoader::~SourceLoader() = default;

Status SourceLoader::Open() {
  if (config_.files.empty()) {
    return Status::InvalidArgument("loader " + name() + " has no files assigned");
  }
  return RefillToWatermark();
}

Status SourceLoader::LoadNextGroup() {
  while (next_file_ < static_cast<int64_t>(config_.files.size())) {
    if (reader_file_ != next_file_) {
      const std::string& file = config_.files[static_cast<size_t>(next_file_)];
      // Through the io layer when present: footer + row groups come from the
      // shared block cache (one backing Get per block across all loaders).
      // Ranged mode pays one uncached Get per block; legacy mode aliases the
      // whole blob (local-storage semantics).
      Result<MsdfReader> reader =
          io_ != nullptr ? MsdfReader::OpenCached(io_, file, accountant_, config_.node,
                                                  config_.io_tenant)
          : config_.ranged_reads
              ? MsdfReader::OpenRanged(*store_, file, accountant_, config_.node)
              : MsdfReader::Open(*store_, file, accountant_, config_.node);
      if (!reader.ok()) {
        return reader.status();
      }
      reader_ = std::move(reader.value());
      reader_file_ = next_file_;
    }
    if (next_group_ >= static_cast<int64_t>(reader_->info().row_groups.size())) {
      ++next_file_;
      next_group_ = 0;
      continue;
    }
    Result<std::vector<std::string>> rows =
        reader_->ReadRowGroup(static_cast<size_t>(next_group_));
    if (!rows.ok()) {
      return rows.status();
    }
    ++next_group_;
    if (read_ahead_ != nullptr) {
      // The cursor moved: prefetch the groups it will need next, so their
      // storage round-trips overlap the transform work below.
      read_ahead_->Advance(config_.files, next_file_, next_group_);
    }

    // Deserialize + transform worker-parallel across the loader's workers.
    // Samples are allocated once here and then only ever shared: the same
    // allocation flows buffer -> SampleSlice -> constructor sample map.
    //
    // Arena mode (default): the group's Samples live in ONE shared block and
    // each handed-out pointer aliases it, so the block dies exactly when the
    // group's last sample retires; decoded payload bytes stage into per-shard
    // RowGroupArena slabs frozen below into one buffer per (shard, payload
    // kind). Legacy mode pays one heap Sample + one frozen buffer per payload
    // per row. The produced bytes are identical either way.
    std::vector<std::shared_ptr<Sample>> samples(rows->size());
    std::shared_ptr<std::vector<Sample>> block;
    if (config_.arena_decode) {
      block = std::make_shared<std::vector<Sample>>(rows->size());
      for (size_t i = 0; i < samples.size(); ++i) {
        samples[i] = std::shared_ptr<Sample>(block, &(*block)[i]);
      }
    } else {
      for (auto& s : samples) {
        s = std::make_shared<Sample>();
      }
    }
    std::vector<SimTime> costs(rows->size(), 0);
    std::atomic<bool> failed{false};
    std::vector<std::future<void>> futures;
    size_t shards = workers_->num_threads();
    std::vector<RowGroupArena> arenas(config_.arena_decode ? shards : 0);
    for (size_t shard = 0; shard < shards; ++shard) {
      futures.push_back(workers_->Submit([&, shard] {
        RowGroupArena* arena = config_.arena_decode ? &arenas[shard] : nullptr;
        for (size_t i = shard; i < rows->size(); i += shards) {
          if (!DeserializeSample(rows.value()[i], samples[i].get())) {
            failed.store(true);
            return;
          }
          Result<SimTime> cost = pipeline_.Apply(*samples[i], arena);
          if (!cost.ok()) {
            failed.store(true);
            return;
          }
          costs[i] = static_cast<SimTime>(static_cast<double>(cost.value()) *
                                          config_.spec.transform_cost_multiplier);
        }
      }));
    }
    for (auto& f : futures) {
      f.wait();
    }
    if (failed.load()) {
      return Status::DataLoss("corrupt row or failed transform in " + name());
    }
    for (RowGroupArena& arena : arenas) {
      // Freeze on the loader thread after the workers join: each shard slab
      // becomes one immutable buffer and the staged spans become views.
      arena.Freeze();
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      total_transform_cost_ += costs[i];
      if (consumed_set_.find(samples[i]->meta.sample_id) == consumed_set_.end()) {
        buffer_.push_back(std::move(samples[i]));
      }
    }
    return Status::Ok();
  }
  exhausted_ = true;
  return Status::Ok();
}

Status SourceLoader::RefillToWatermark() {
  while (!exhausted_ && buffer_.size() < config_.buffer_low_watermark) {
    MSD_RETURN_IF_ERROR(LoadNextGroup());
  }
  return Status::Ok();
}

BufferInfo SourceLoader::SummaryBuffer() const {
  BufferInfo info;
  info.loader_id = config_.loader_id;
  info.source_id = config_.spec.source_id;
  info.samples.reserve(buffer_.size());
  for (const std::shared_ptr<Sample>& s : buffer_) {
    info.samples.push_back(s->meta);
  }
  return info;
}

Result<SampleSlice> SourceLoader::PopSamples(int64_t step, const std::vector<uint64_t>& ids) {
  SampleSlice slice;
  slice.step = step;
  slice.loader_id = config_.loader_id;
  std::unordered_set<uint64_t> wanted(ids.begin(), ids.end());
  if (wanted.size() != ids.size()) {
    return Status::InvalidArgument("duplicate sample ids in pop request");
  }
  // Single compaction pass: extract the wanted samples (in buffer order) and
  // keep the rest, instead of an erase() per hit (O(buffer * ids)).
  slice.samples.reserve(ids.size());
  std::deque<std::shared_ptr<Sample>> kept;
  for (std::shared_ptr<Sample>& s : buffer_) {
    if (wanted.erase(s->meta.sample_id) > 0) {
      consumed_ids_.push_back(s->meta.sample_id);
      consumed_set_.insert(s->meta.sample_id);
      slice.samples.push_back(std::move(s));
    } else {
      kept.push_back(std::move(s));
    }
  }
  buffer_.swap(kept);
  if (!wanted.empty()) {
    return Status::NotFound(name() + ": " + std::to_string(wanted.size()) +
                            " requested samples not in buffer");
  }
  samples_served_ += static_cast<int64_t>(slice.samples.size());
  if (config_.inject_partial_yield) {
    // Fault injection: drop the tail and omit the end-of-stream marker.
    if (slice.samples.size() > 1) {
      slice.samples.resize(slice.samples.size() / 2);
    }
    slice.end_of_stream = false;
    return slice;
  }
  if (buffer_.empty()) {
    // Buffer origin advances: everything before the cursor is fully consumed.
    origin_file_ = next_file_;
    origin_group_ = next_group_;
    consumed_ids_.clear();
    consumed_set_.clear();
  }
  Status refill = RefillToWatermark();
  if (!refill.ok()) {
    // The pop itself succeeded — those samples are consumed, and failing the
    // slice now would make a retried pop re-request consumed ids (NotFound, a
    // permanent failure) and fork the stream. Storage-health failures defer
    // to the next gather instead: serve the slice, remember the error, and
    // let GatherBuffer retry the refill (cursor-based, side-effect-free on
    // failure) until the buffer catches up or the planner quarantines us.
    const StatusCode code = refill.code();
    if (code == StatusCode::kUnavailable || code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kDataLoss) {
      last_refill_error_ = refill;
      return slice;
    }
    return refill;
  }
  last_refill_error_ = Status::Ok();
  return slice;
}

BufferInfo SourceLoader::GatherBuffer() {
  if (!last_refill_error_.ok()) {
    last_refill_error_ = RefillToWatermark();
  }
  BufferInfo info = SummaryBuffer();
  info.io_healthy = last_refill_error_.ok();
  return info;
}

LoaderSnapshot SourceLoader::Snapshot() const {
  LoaderSnapshot snap;
  snap.origin_file = origin_file_;
  snap.origin_group = origin_group_;
  snap.consumed_ids = consumed_ids_;
  return snap;
}

Status SourceLoader::Restore(const LoaderSnapshot& snapshot) {
  buffer_.clear();
  reader_.reset();
  reader_file_ = -1;
  exhausted_ = false;
  origin_file_ = snapshot.origin_file;
  origin_group_ = snapshot.origin_group;
  next_file_ = snapshot.origin_file;
  next_group_ = snapshot.origin_group;
  consumed_ids_ = snapshot.consumed_ids;
  consumed_set_ = std::unordered_set<uint64_t>(consumed_ids_.begin(), consumed_ids_.end());
  if (read_ahead_ != nullptr) {
    // Re-warm the window from the restored cursor: the rewind may point below
    // the old high-water mark, and a resumed process starts cache-cold.
    read_ahead_->Reset();
    read_ahead_->Advance(config_.files, next_file_, next_group_);
  }
  return RefillToWatermark();
}

}  // namespace msd
