// Analytic models of the baseline dataloader architectures (Sec. 7.1):
// PyTorch DataLoader (colocated), tf.data service (remote), Cachew (remote +
// cache), Ray Data (streaming batches), Pecan (hybrid placement), and
// MegaScale-Data itself — each with its memory replication pattern, fetch
// latency, and CPU usage for a given training configuration.
//
// The memory structure is the heart of the comparison (Figs. 4, 12):
//  - Colocated loaders replicate ALL per-source file states in EVERY worker
//    of EVERY rank — including the redundant CP/PP rank loaders of Fig. 6.
//  - Remote loaders centralize transformation but still keep per-client
//    stream state and per-worker source states.
//  - MegaScale-Data holds each source's state exactly once (per loader
//    partition) and shares constructed batches across CP/PP/TP ranks.
#ifndef SRC_BASELINE_LOADER_MODELS_H_
#define SRC_BASELINE_LOADER_MODELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/mesh/parallelism.h"
#include "src/trainsim/cluster.h"

namespace msd {

enum class LoaderArch {
  kTorch = 0,      // colocated per-rank workers
  kTfData,         // tf.data service: disaggregated workers, per-client streams
  kCachew,         // tf.data + auto-caching layer
  kRayData,        // streaming batch executors + object store
  kPecan,          // hybrid local/remote placement + transform reordering
  kMegaScaleData,  // this paper
};

const char* LoaderArchName(LoaderArch arch);
std::vector<LoaderArch> AllLoaderArchs();

struct LoaderWorkloadConfig {
  int32_t num_sources = 306;
  // Resident state per open source: socket + footer metadata + one active
  // row-group buffer (Parquet row groups are 512MB-1GB; readers hold one).
  int64_t per_source_state_bytes = 640 * kMiB;
  int32_t workers_per_rank = 4;      // tuned worker count (auto-tuned, Sec. 7.1)
  int64_t samples_per_rank_step = 72;
  int64_t bytes_per_sample = 512 * 1024;
  // Mean per-sample transformation latency on one worker (us).
  double transform_us_per_sample = 9000.0;
  ParallelismSpec spec;
  ClusterSpec cluster;
};

struct LoaderSimResult {
  double fetch_latency_s = 0.0;    // data fetch latency per step
  int64_t memory_per_node = 0;     // average loader memory per node
  double cpu_cores_per_node = 0.0; // loader CPU footprint
  bool input_bound = false;        // fetch not hidden by training compute
};

// Evaluates one architecture under the workload. `train_iteration_s` is the
// training compute time the fetch pipeline may overlap with.
LoaderSimResult SimulateLoaderArch(LoaderArch arch, const LoaderWorkloadConfig& config,
                                   double train_iteration_s);

}  // namespace msd

#endif  // SRC_BASELINE_LOADER_MODELS_H_
