#include "src/baseline/loader_models.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace msd {

namespace {

// Worker process footprint (context + prefetch slots).
constexpr int64_t kWorkerBytes = 256 * kMiB;
// Fraction of a source's file states a long-running worker keeps open
// (lazy open + LRU keeps it below 1.0 in every framework).
constexpr double kOpenFraction = 0.12;
// Planner/runtime fixed footprint for MegaScale-Data.
constexpr int64_t kPlannerBytes = 4 * kGiB;
// Coordination overhead per plan: metadata gather + plan compute.
constexpr double kPlanBaseSeconds = 0.4;
constexpr double kPlanPerSourceSeconds = 0.004;

struct ArchTraits {
  bool remote = false;            // states live on CPU pods, not trainer ranks
  double state_share = 1.0;       // cross-worker sharing of source states
  double fetch_multiplier = 1.0;  // pipeline efficiency vs plain torch
  double extra_batch_copies = 0.0;  // object store / cache staging copies
  double worker_discount = 1.0;   // placement optimizations reduce workers
  double transform_discount = 1.0;  // AutoOrder-style reordering savings
};

ArchTraits TraitsOf(LoaderArch arch) {
  switch (arch) {
    case LoaderArch::kTorch:
      return {.remote = false, .state_share = 1.0, .fetch_multiplier = 1.0};
    case LoaderArch::kTfData:
      // Disaggregated workers amortize some state across jobs but add RPC hops.
      return {.remote = true, .state_share = 0.85, .fetch_multiplier = 1.5};
    case LoaderArch::kCachew:
      // Caching layer: extra staging copies, no benefit in single-epoch runs.
      return {.remote = true,
              .state_share = 0.85,
              .fetch_multiplier = 1.4,
              .extra_batch_copies = 1.0};
    case LoaderArch::kRayData:
      // Streaming batches through an object store: an extra copy per batch.
      return {.remote = true,
              .state_share = 0.75,
              .fetch_multiplier = 1.7,
              .extra_batch_copies = 1.0};
    case LoaderArch::kPecan:
      // AutoPlacement frees workers; AutoOrder reorders transformations so
      // each sample costs less to prepare (Sec. 6.2 borrows this trick).
      return {.remote = true,
              .state_share = 0.75,
              .fetch_multiplier = 1.15,
              .worker_discount = 0.6,
              .transform_discount = 0.55};
    case LoaderArch::kMegaScaleData:
      return {.remote = true, .state_share = 1.0, .fetch_multiplier = 1.0};
  }
  return {};
}

}  // namespace

const char* LoaderArchName(LoaderArch arch) {
  switch (arch) {
    case LoaderArch::kTorch:
      return "torch";
    case LoaderArch::kTfData:
      return "tf_data";
    case LoaderArch::kCachew:
      return "cachew";
    case LoaderArch::kRayData:
      return "ray_data";
    case LoaderArch::kPecan:
      return "pecan";
    case LoaderArch::kMegaScaleData:
      return "MegaScale-Data";
  }
  return "?";
}

std::vector<LoaderArch> AllLoaderArchs() {
  return {LoaderArch::kTorch,   LoaderArch::kTfData, LoaderArch::kCachew,
          LoaderArch::kRayData, LoaderArch::kPecan,  LoaderArch::kMegaScaleData};
}

LoaderSimResult SimulateLoaderArch(LoaderArch arch, const LoaderWorkloadConfig& config,
                                   double train_iteration_s) {
  MSD_CHECK(config.spec.WorldSize() > 0);
  LoaderSimResult out;
  const ArchTraits traits = TraitsOf(arch);
  const int32_t world = config.spec.WorldSize();
  const int32_t nodes = std::max(1, (world + config.cluster.node.gpus_per_node - 1) /
                                        config.cluster.node.gpus_per_node);
  // TP broadcasting is enabled for every loader (Sec. 7.1), so only tp==0
  // ranks instantiate loaders. Every CP and PP rank still runs one (Fig. 6).
  const int64_t loading_ranks = world / std::max(1, config.spec.tp);
  const int64_t batch_bytes = config.samples_per_rank_step * config.bytes_per_sample;

  if (arch != LoaderArch::kMegaScaleData) {
    // ---- Memory: one full dataloader per loading rank; each of its workers
    // keeps (a share of) every source's file state open.
    double per_worker_states = static_cast<double>(config.num_sources) *
                               static_cast<double>(config.per_source_state_bytes) *
                               kOpenFraction * traits.state_share;
    int32_t workers =
        std::max(1, static_cast<int32_t>(std::lround(config.workers_per_rank *
                                                     traits.worker_discount)));
    double per_instance = workers * (per_worker_states + kWorkerBytes) +
                          static_cast<double>(batch_bytes) * (1.0 + traits.extra_batch_copies);
    double total_memory = static_cast<double>(loading_ranks) * per_instance;
    out.memory_per_node = static_cast<int64_t>(total_memory / nodes);
    out.cpu_cores_per_node =
        static_cast<double>(loading_ranks * workers) / static_cast<double>(nodes);

    // ---- Fetch latency: one rank's batch must be transformed by its own
    // workers (remote archs add transfer + dispatch hops).
    double transform_s = static_cast<double>(config.samples_per_rank_step) *
                         config.transform_us_per_sample * traits.transform_discount / 1e6 /
                         workers;
    double transfer_s = 0.0;
    if (traits.remote) {
      transfer_s = static_cast<double>(batch_bytes) / (12.0 * kGiB);
    }
    out.fetch_latency_s = transform_s * traits.fetch_multiplier + transfer_s;
  } else {
    // ---- MegaScale-Data: every source's state exists exactly once across
    // the job (per-source actors); constructed batches are shared across
    // CP/PP ranks through one Data Constructor per DP group.
    double state_total = static_cast<double>(config.num_sources) *
                         static_cast<double>(config.per_source_state_bytes);
    // Worker demand from throughput: the whole step's samples must be
    // transformed within one (overlapped) iteration.
    double samples_per_step =
        static_cast<double>(config.samples_per_rank_step) * config.spec.dp;
    double worker_demand = samples_per_step * config.transform_us_per_sample / 1e6 /
                           std::max(train_iteration_s, 1.0);
    double workers_total =
        std::clamp(worker_demand * 1.25, static_cast<double>(config.num_sources),
                   static_cast<double>(nodes) * config.cluster.node.SidecarCores());
    double constructor_memory = static_cast<double>(config.spec.dp) *
                                static_cast<double>(batch_bytes) * 2.0;  // double buffering
    double total_memory = state_total + workers_total * kWorkerBytes + constructor_memory +
                          static_cast<double>(kPlannerBytes);
    out.memory_per_node = static_cast<int64_t>(total_memory / nodes);
    out.cpu_cores_per_node = (workers_total + config.spec.dp + 1.0) / nodes;

    // ---- Fetch latency: coordination (metadata gather + plan) plus popping
    // and assembling one DP group's batch; transforms happened ahead of time
    // in the per-source pipelines.
    double plan_s = kPlanBaseSeconds + kPlanPerSourceSeconds * config.num_sources;
    double assemble_s = static_cast<double>(batch_bytes) / (12.0 * kGiB) +
                        static_cast<double>(config.samples_per_rank_step) * 200.0 / 1e6;
    out.fetch_latency_s = plan_s + assemble_s;
  }

  out.input_bound = out.fetch_latency_s > train_iteration_s;
  return out;
}

}  // namespace msd
