// StallAttribution: decomposes every produced step's wall time into exclusive
// buckets from the span ring — the in-process, continuous equivalent of the
// paper's Fig. 15 time-breakdown.
//
// Input is the StepTracer's Snapshot(): the producer records, per step,
//   step.gate   blocked on a free window slot (consumer backpressure)
//   step.plan   planner Ask
//   step.pop    the whole gather (all loader pops)
//   pop.wait    one loader's share of the gather, source-labelled (detail)
//   step.build  constructor assembly
// and the io threads record io.get / io.retry / io.hedge with step == -1.
//
// A step is *finalized* once its step.gate span appears (the producer records
// it last). Its exclusive buckets, all in milliseconds:
//
//   consumer_stall = step.gate duration
//   plan           = step.plan duration
//   io_retry       = union of io.retry+io.hedge spans clipped to the pop window
//   io_backing     = union of io.get spans clipped to the pop window, minus
//                    any time already classified io_retry
//   pop_wait       = step.pop duration minus io_backing minus io_retry — the
//                    gather time NOT explained by backing I/O (loader decode/
//                    transform, actor queueing): the decode-bound signal
//   build          = step.build duration
//   other          = wall minus all of the above, clamped at 0
//
// wall = build end - gate start, so the buckets sum to wall within clipping
// tolerance (asserted by tests/diagnosis_test.cc on a synthetic ring).
//
// The verdict is computed over a rolling window of finalized steps with
// *sum* weighting (each step weighted by its wall time), so a brownout —
// few steps, each several times longer than baseline — dominates the window
// within a couple of steps instead of being averaged away.
//
// Thread-safety: none. The owner (HealthMonitor) serializes access.
#ifndef SRC_TELEMETRY_ATTRIBUTION_H_
#define SRC_TELEMETRY_ATTRIBUTION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/telemetry/trace.h"

namespace msd {

// One finalized step's exclusive time buckets (milliseconds).
struct StepBreakdown {
  int64_t step = -1;
  double wall_ms = 0.0;
  double consumer_stall_ms = 0.0;  // producer gated on the prefetch window
  double plan_ms = 0.0;
  double pop_wait_ms = 0.0;    // gather time not explained by backing I/O
  double io_backing_ms = 0.0;  // first-try backing Gets inside the gather
  double io_retry_ms = 0.0;    // retry/hedge attempts inside the gather
  double build_ms = 0.0;
  double other_ms = 0.0;
  int32_t dominant_source = -1;  // slowest source by pop.wait, -1 = unknown
  double dominant_source_ms = 0.0;
};

enum class BottleneckKind { kHealthy = 0, kIoBound = 1, kDecodeBound = 2, kConsumerBound = 3 };

const char* ToString(BottleneckKind kind);

// The rolling classification: which bucket family dominates the windowed,
// wall-weighted breakdown, with what share (confidence), and which source is
// the slowest when the answer is data-side.
struct BottleneckVerdict {
  BottleneckKind kind = BottleneckKind::kHealthy;
  double confidence = 0.0;  // dominant family's share of windowed wall time
  int32_t dominant_source = -1;
  double io_fraction = 0.0;        // (io_backing + io_retry) / wall
  double decode_fraction = 0.0;    // pop_wait / wall
  double consumer_fraction = 0.0;  // consumer_stall / wall
  int64_t steps_observed = 0;      // finalized steps in the window
  int64_t last_step = -1;
};

class StallAttribution {
 public:
  struct Config {
    IoTenantId tenant = kDefaultIoTenant;  // only this tenant's spans count
    size_t window_steps = 16;              // verdict window (also Fig-15 depth)
    size_t history_steps = 256;            // breakdowns retained for bundles
    // A bucket family must hold at least this share of windowed wall time to
    // name the bottleneck; below it the verdict stays healthy.
    double dominance_threshold = 0.4;
  };

  explicit StallAttribution(Config config);

  // Ingests a tracer snapshot (oldest first) and finalizes, in step order,
  // every not-yet-finalized step whose step.gate span is present. Passing
  // overlapping snapshots is fine — already-finalized steps are skipped.
  // Returns the number of steps finalized by this call.
  int Observe(const std::vector<TraceSpan>& spans);

  BottleneckVerdict Verdict() const;
  // Retained breakdowns, oldest first (up to history_steps).
  std::vector<StepBreakdown> History() const;
  // Newest `n` breakdowns, oldest first.
  std::vector<StepBreakdown> Recent(size_t n) const;
  int64_t last_finalized_step() const { return last_finalized_; }

  // {"tenant":..,"verdict":{..},"steps":[{..},..]} for diagnostic bundles.
  std::string RenderHistoryJson() const;

 private:
  void Finalize(const std::vector<TraceSpan>& spans, int64_t step);

  Config config_;
  int64_t last_finalized_ = -1;
  std::deque<StepBreakdown> history_;
};

}  // namespace msd

#endif  // SRC_TELEMETRY_ATTRIBUTION_H_
