// MetricsRegistry: the one place every subsystem's counters meet.
//
// Two ways series get into the registry:
//
//  - Owned instruments (Counter / Gauge / Histogram): registered once by name
//    (+ optional tenant label), then updated with relaxed atomics — the hot
//    path never takes a lock. Use these for NEW instrumentation (per-step
//    plan/build latency histograms, scrape-side gauges).
//
//  - Collectors: callbacks that append MetricPoints at snapshot time. Use
//    these to bridge existing mutex-protected Stats structs (BlockCache,
//    IoScheduler, PrefetchPipeline): the struct's own consistent locked
//    snapshot (all shards locked together, one scheduler mutex) stays the
//    source of truth, so cross-counter invariants like
//    lookups == hits + misses survive into the exported points — converting
//    those structs to free-running atomics would tear them.
//
// Snapshot() copies every owned instrument and runs every collector under the
// registry mutex, yielding a TelemetrySnapshot that RenderPrometheus /
// RenderJson turn into operator-facing text. `StepStats`, `io_stats()` and
// `DataService::MetricsSnapshot()` are thin views over the same collect path
// (src/telemetry/bridge.h), so the struct APIs and the export surface can
// never disagree.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/io/block_cache.h"

namespace msd {

// Tenant label value meaning "no tenant dimension" — the aggregate series.
inline constexpr IoTenantId kMetricNoTenant = -1;

enum class MetricKind { kCounter, kGauge, kHistogram };

// One exported series sample. Counters and gauges carry `value`; histograms
// carry per-bucket counts (bounds.size() + 1 buckets, the last one catching
// everything past the largest bound) plus sum/count.
struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  IoTenantId tenant = kMetricNoTenant;
  double value = 0.0;
  std::vector<double> bounds;    // histogram bucket upper bounds (inclusive)
  std::vector<int64_t> buckets;  // per-bucket counts; size == bounds.size()+1
  double sum = 0.0;
  int64_t count = 0;
};

// A consistent point-in-time copy of every registered series.
struct TelemetrySnapshot {
  int64_t uptime_us = 0;  // registry age at snapshot time (steady clock)
  std::vector<MetricPoint> points;
};

// Monotonic counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. Observe is a bucket scan + two relaxed atomics
// (no lock); bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  // Per-bucket counts; size == bounds().size() + 1 (overflow bucket last).
  std::vector<int64_t> BucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  // Appends MetricPoints describing external state (bridged Stats structs).
  // Runs under the registry mutex at Snapshot() time; must not call back
  // into this registry.
  using Collector = std::function<void(std::vector<MetricPoint>*)>;

  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or finds) the instrument for (name, tenant). The returned
  // pointer is stable for the registry's lifetime — cache it; updates through
  // it are lock-free. kMetricNoTenant = the unlabelled aggregate series.
  Counter* GetCounter(const std::string& name, IoTenantId tenant = kMetricNoTenant);
  Gauge* GetGauge(const std::string& name, IoTenantId tenant = kMetricNoTenant);
  // `bounds` must be strictly increasing; ignored if the histogram exists.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          IoTenantId tenant = kMetricNoTenant);

  // Registers a collector; returns a handle for RemoveCollector. Collectors
  // run in registration order at every Snapshot().
  int64_t AddCollector(Collector collector);
  // Blocks until no Snapshot() is mid-flight with this collector, then
  // forgets it — after return the collector's captures may be destroyed.
  void RemoveCollector(int64_t handle);

  TelemetrySnapshot Snapshot() const;

 private:
  using SeriesKey = std::pair<std::string, IoTenantId>;

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms_;
  std::map<int64_t, Collector> collectors_;
  int64_t next_collector_ = 1;
};

// Prometheus text exposition (one "# TYPE" header per series name, tenant as
// a {tenant="N"} label, histograms as cumulative _bucket/_sum/_count).
std::string RenderPrometheus(const TelemetrySnapshot& snapshot);
// JSON rendering: {"uptime_us":..,"metrics":[{...}]}.
std::string RenderJson(const TelemetrySnapshot& snapshot);

}  // namespace msd

#endif  // SRC_TELEMETRY_METRICS_H_
