#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace msd {

namespace {

// Formats a double the way both Prometheus and JSON accept: integers print
// without a fraction, everything else with enough digits to round-trip.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MSD_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    MSD_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t idx = bounds_.size();  // overflow bucket
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1, 0);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry::MetricsRegistry() : start_(std::chrono::steady_clock::now()) {}

Counter* MetricsRegistry::GetCounter(const std::string& name, IoTenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace({name, tenant});
  if (inserted) {
    it->second = std::make_unique<Counter>();
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, IoTenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace({name, tenant});
  if (inserted) {
    it->second = std::make_unique<Gauge>();
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds,
                                         IoTenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace({name, tenant});
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::move(bounds));
  }
  return it->second.get();
}

int64_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t handle = next_collector_++;
  collectors_.emplace(handle, std::move(collector));
  return handle;
}

void MetricsRegistry::RemoveCollector(int64_t handle) {
  // Snapshot() runs collectors under mu_, so acquiring it here provides the
  // "no snapshot mid-flight" guarantee the destructor ordering relies on.
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(handle);
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetrySnapshot snap;
  snap.uptime_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  for (const auto& [key, counter] : counters_) {
    MetricPoint point;
    point.name = key.first;
    point.kind = MetricKind::kCounter;
    point.tenant = key.second;
    point.value = static_cast<double>(counter->value());
    snap.points.push_back(std::move(point));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricPoint point;
    point.name = key.first;
    point.kind = MetricKind::kGauge;
    point.tenant = key.second;
    point.value = gauge->value();
    snap.points.push_back(std::move(point));
  }
  for (const auto& [key, hist] : histograms_) {
    MetricPoint point;
    point.name = key.first;
    point.kind = MetricKind::kHistogram;
    point.tenant = key.second;
    point.bounds = hist->bounds();
    point.buckets = hist->BucketCounts();
    point.sum = hist->sum();
    point.count = hist->count();
    snap.points.push_back(std::move(point));
  }
  for (const auto& [handle, collector] : collectors_) {
    collector(&snap.points);
  }
  return snap;
}

std::string RenderPrometheus(const TelemetrySnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.points.size() * 64);
  std::string last_typed;  // one "# TYPE" header per series name
  for (const MetricPoint& p : snapshot.points) {
    if (p.name != last_typed) {
      out += "# TYPE " + p.name + " " + KindName(p.kind) + "\n";
      last_typed = p.name;
    }
    const std::string tenant_label =
        p.tenant == kMetricNoTenant ? "" : "tenant=\"" + std::to_string(p.tenant) + "\"";
    if (p.kind != MetricKind::kHistogram) {
      out += p.name;
      if (!tenant_label.empty()) {
        out += "{" + tenant_label + "}";
      }
      out += " " + FormatValue(p.value) + "\n";
      continue;
    }
    // Histogram: cumulative le-buckets, then _sum and _count.
    int64_t cumulative = 0;
    for (size_t i = 0; i < p.buckets.size(); ++i) {
      cumulative += p.buckets[i];
      const std::string le =
          i < p.bounds.size() ? "le=\"" + FormatValue(p.bounds[i]) + "\"" : "le=\"+Inf\"";
      out += p.name + "_bucket{" + (tenant_label.empty() ? "" : tenant_label + ",") + le + "} " +
             FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    const std::string suffix = tenant_label.empty() ? "" : "{" + tenant_label + "}";
    out += p.name + "_sum" + suffix + " " + FormatValue(p.sum) + "\n";
    out += p.name + "_count" + suffix + " " + FormatValue(static_cast<double>(p.count)) + "\n";
  }
  return out;
}

std::string RenderJson(const TelemetrySnapshot& snapshot) {
  std::string out = "{\"uptime_us\":" + std::to_string(snapshot.uptime_us) + ",\"metrics\":[";
  for (size_t i = 0; i < snapshot.points.size(); ++i) {
    const MetricPoint& p = snapshot.points[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"name\":\"" + p.name + "\",\"kind\":\"" + KindName(p.kind) + "\"";
    if (p.tenant != kMetricNoTenant) {
      out += ",\"tenant\":" + std::to_string(p.tenant);
    }
    if (p.kind != MetricKind::kHistogram) {
      out += ",\"value\":" + FormatValue(p.value);
    } else {
      out += ",\"bounds\":[";
      for (size_t b = 0; b < p.bounds.size(); ++b) {
        out += (b > 0 ? "," : "") + FormatValue(p.bounds[b]);
      }
      out += "],\"buckets\":[";
      for (size_t b = 0; b < p.buckets.size(); ++b) {
        out += (b > 0 ? "," : "") + std::to_string(p.buckets[b]);
      }
      out += "],\"sum\":" + FormatValue(p.sum) + ",\"count\":" + std::to_string(p.count);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace msd
