// Bridges the subsystems' consistent Stats structs into MetricPoints.
//
// These are the conversion functions every registry collector uses — one
// MetricPoint per counter field, with a shared naming scheme (the catalog in
// docs/OBSERVABILITY.md). The Stats structs stay the source of truth: their
// own locked snapshots (BlockCache locks all shards together, IoScheduler
// holds one mutex) give the consistent cut, and the bridge only renames
// fields — so `io_stats()` / `tenant_stats()` and the exported metrics are
// views over the same numbers and can never disagree.
#ifndef SRC_TELEMETRY_BRIDGE_H_
#define SRC_TELEMETRY_BRIDGE_H_

#include <vector>

#include "src/api/prefetch_pipeline.h"
#include "src/io/block_cache.h"
#include "src/io/io_scheduler.h"
#include "src/telemetry/metrics.h"

namespace msd {

// Block-cache counters -> msd_cache_* series. `tenant` labels the points
// (kMetricNoTenant = the unlabelled aggregate series).
void AppendCacheMetrics(const BlockCache::Stats& stats, IoTenantId tenant,
                        std::vector<MetricPoint>* out);

// IoScheduler counters -> msd_io_* series.
void AppendSchedulerMetrics(const IoScheduler::Stats& stats, IoTenantId tenant,
                            std::vector<MetricPoint>* out);

// Prefetch-pipeline counters -> msd_pipeline_* series (per-rank stall
// histogram folded into totals; the full per-rank break-down stays on
// StepStats::rank_stalls).
void AppendPipelineMetrics(const PrefetchPipeline::Stats& stats, IoTenantId tenant,
                           std::vector<MetricPoint>* out);

// Backing-store counters (LatencyInjectingStore) -> msd_storage_* series.
void AppendStorageMetrics(int64_t gets, int64_t bytes_served, IoTenantId tenant,
                          std::vector<MetricPoint>* out);

// Chaos-plane counters (FaultInjectingStore) -> msd_faults_injected /
// msd_corruptions_injected / msd_brownout_failures _total series.
void AppendFaultMetrics(int64_t faults_injected, int64_t corruptions_injected,
                        int64_t brownout_failures, IoTenantId tenant,
                        std::vector<MetricPoint>* out);

// Process-wide payload-plane freeze/copy accounting -> msd_payload_* series.
// Always aggregate (the counters are global, not per tenant).
void AppendPayloadMetrics(std::vector<MetricPoint>* out);

// Process-wide MSD_LOG_WARN_EVERY_N suppression accounting ->
// msd_log_suppressed_total. Always aggregate (the counters are per call
// site, not per tenant).
void AppendLoggingMetrics(std::vector<MetricPoint>* out);

}  // namespace msd

#endif  // SRC_TELEMETRY_BRIDGE_H_
