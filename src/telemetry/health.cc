#include "src/telemetry/health.h"

#include <algorithm>
#include <utility>

namespace msd {

namespace {

StallAttribution::Config WithTenant(StallAttribution::Config config, IoTenantId tenant) {
  config.tenant = tenant;
  return config;
}

}  // namespace

HealthMonitor::HealthMonitor(HealthOptions options, IoTenantId tenant,
                             MetricsRegistry* metrics, StepTracer* tracer)
    : options_(std::move(options)),
      tenant_(tenant),
      metrics_(metrics),
      tracer_(tracer),
      attribution_(WithTenant(options_.attribution, tenant)),
      detector_(options_.slo) {
  // Shared plane recorder wins; otherwise own one rooted at recorder_dir.
  if (options_.recorder != nullptr) {
    recorder_ = options_.recorder;
  } else if (!options_.recorder_dir.empty()) {
    recorder_ = std::make_shared<FlightRecorder>(FlightRecorder::Config{
        .dir = options_.recorder_dir,
        .keep_bundles = options_.recorder_keep_bundles,
        .min_interval_ms = options_.recorder_min_interval_ms});
  }
  if (options_.log_ring_lines > 0) {
    log_ring_ = std::make_unique<LogRing>(options_.log_ring_lines);
    AttachLogRing(log_ring_.get());
  }
  if (metrics_ != nullptr) {
    verdict_gauge_ = metrics_->GetGauge("msd_health_verdict", tenant_);
    confidence_gauge_ = metrics_->GetGauge("msd_health_confidence", tenant_);
    active_gauge_ = metrics_->GetGauge("msd_anomalies_active", tenant_);
    triggers_counter_ = metrics_->GetCounter("msd_anomaly_triggers_total", tenant_);
    bundles_counter_ = metrics_->GetCounter("msd_recorder_bundles_total", tenant_);
  }
}

HealthMonitor::~HealthMonitor() {
  if (log_ring_ != nullptr) {
    DetachLogRing(log_ring_.get());
  }
}

void HealthMonitor::IngestLocked() {
  if (tracer_ != nullptr) {
    attribution_.Observe(tracer_->Snapshot());
  }
}

void HealthMonitor::ExportLocked() {
  if (metrics_ == nullptr) {
    return;
  }
  const BottleneckVerdict v = attribution_.Verdict();
  verdict_gauge_->Set(static_cast<double>(static_cast<int>(v.kind)));
  confidence_gauge_->Set(v.confidence);
  active_gauge_->Set(static_cast<double>(detector_.active()));
}

void HealthMonitor::DumpLocked(const std::string& reason) {
  if (recorder_ == nullptr) {
    return;
  }
  std::vector<FlightRecorder::Artifact> artifacts;
  if (tracer_ != nullptr) {
    artifacts.push_back({"trace.json", tracer_->RenderChromeTrace()});
  }
  if (metrics_ != nullptr) {
    artifacts.push_back({"metrics.json", RenderJson(metrics_->Snapshot())});
  }
  artifacts.push_back({"attribution.json", attribution_.RenderHistoryJson()});
  const BottleneckVerdict v = attribution_.Verdict();
  std::string verdict_json = "{\"tenant\":" + std::to_string(tenant_) + ",\"verdict\":\"";
  verdict_json += ToString(v.kind);
  verdict_json += "\",\"confidence\":" + std::to_string(v.confidence) +
                  ",\"dominant_source\":" + std::to_string(v.dominant_source) +
                  ",\"hard_events\":" + std::to_string(hard_events_) +
                  ",\"anomalies\":" + detector_.RenderJson() + "}";
  artifacts.push_back({"verdict.json", std::move(verdict_json)});
  if (log_ring_ != nullptr) {
    std::string tail;
    for (const std::string& line : log_ring_->Tail()) {
      tail += line;
      tail += '\n';
    }
    artifacts.push_back({"log_tail.txt", std::move(tail)});
  }
  Result<std::string> dumped = recorder_->Dump(reason, artifacts);
  if (dumped.ok() && !dumped.value().empty()) {
    ++bundles_written_;
    if (bundles_counter_ != nullptr) {
      bundles_counter_->Increment();
    }
    MSD_LOG_INFO("health[%lld]: wrote diagnostic bundle %s (%s)",
                 static_cast<long long>(tenant_), dumped.value().c_str(), reason.c_str());
  }
}

void HealthMonitor::OnStepProduced(const StepObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  IngestLocked();

  SloSample sample;
  sample.step_ms = obs.step_ms >= 0.0 ? obs.step_ms : -1.0;
  sample.tokens_per_sec =
      obs.step_ms > 0.0 ? static_cast<double>(obs.tokens) / (obs.step_ms / 1000.0) : -1.0;
  int hard = 0;
  std::string hard_reason;
  if (has_prev_) {
    const int64_t d_lookups = obs.cache_lookups - prev_.cache_lookups;
    const int64_t d_hits = obs.cache_hits - prev_.cache_hits;
    if (d_lookups > 0) {
      sample.cache_hit_rate = static_cast<double>(d_hits) / static_cast<double>(d_lookups);
    }
    const int64_t d_issued = obs.io_issued_gets - prev_.io_issued_gets;
    const int64_t d_retries = obs.io_retries - prev_.io_retries;
    if (d_issued > 0) {
      sample.retry_rate = static_cast<double>(d_retries) / static_cast<double>(d_issued);
    }
    if (obs.quarantined_sources > prev_.quarantined_sources) {
      ++hard;
      hard_reason = "source-quarantine";
    }
    if (obs.watchdog_detections > prev_.watchdog_detections) {
      ++hard;
      hard_reason = hard_reason.empty() ? "watchdog-promotion"
                                        : hard_reason + "+watchdog-promotion";
    }
  }
  prev_ = obs;
  has_prev_ = true;

  const int64_t was_active = detector_.active();
  const int fired = detector_.OnStep(sample);
  hard_events_ += hard;
  if (triggers_counter_ != nullptr && fired + hard > 0) {
    triggers_counter_->Increment(fired + hard);
  }
  // One bundle per incident, not per symptom: dump on the FIRST alarm (the
  // 0 -> >0 transition) or on a hard event; additional signals joining an
  // already-active incident do not redump.
  if (hard > 0) {
    DumpLocked(hard_reason + " at step " + std::to_string(obs.step));
  } else if (was_active == 0 && detector_.active() > 0 && fired > 0) {
    std::string alarmed;
    for (const AnomalyState& s : detector_.States()) {
      if (s.alarmed) {
        if (!alarmed.empty()) {
          alarmed += "+";
        }
        alarmed += s.signal;
      }
    }
    DumpLocked("anomaly " + alarmed + " at step " + std::to_string(obs.step) +
               " verdict=" + ToString(attribution_.Verdict().kind));
  }
  ExportLocked();
}

void HealthMonitor::OnHardEvent(const char* kind, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  IngestLocked();
  ++hard_events_;
  if (triggers_counter_ != nullptr) {
    triggers_counter_->Increment();
  }
  DumpLocked(std::string(kind) + (detail.empty() ? "" : ": " + detail));
  ExportLocked();
}

HealthReport HealthMonitor::Diagnose() {
  std::lock_guard<std::mutex> lock(mu_);
  IngestLocked();
  HealthReport report;
  report.verdict = attribution_.Verdict();
  report.recent = attribution_.Recent(options_.attribution.window_steps);
  report.anomalies = detector_.States();
  report.anomalies_active = detector_.active();
  report.triggers_total = detector_.triggers() + hard_events_;
  report.hard_events = hard_events_;
  report.bundles_written = bundles_written_;
  ExportLocked();
  return report;
}

void HealthMonitor::SetSloPolicy(const SloPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  detector_.SetPolicy(policy);
}

}  // namespace msd
