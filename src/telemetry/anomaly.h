// AnomalyDetector: per-tenant SLO baselines learned online, with
// hysteresis-guarded triggers.
//
// Four signals are tracked per step: step latency (build-ahead wall ms),
// tokens/s, cache hit-rate, and io retry-rate. Each signal learns its own
// baseline during a warmup window (Welford stats + an empirical quantile),
// then arms. After arming, the baseline keeps adapting via EWMA — but only
// on healthy observations, so a sustained regression cannot drag its own
// baseline up and silence itself.
//
// Hysteresis: a signal must violate its threshold on `trigger_after`
// CONSECUTIVE steps to fire (steady-state noise never alarms), and must be
// healthy for `clear_after` consecutive steps to clear. The detector counts
// fire transitions (`triggers()`) and currently-alarmed signals (`active()`);
// the HealthMonitor turns the 0 -> >0 transition into a flight-recorder dump.
//
// Thread-safety: none. The owner (HealthMonitor) serializes access.
#ifndef SRC_TELEMETRY_ANOMALY_H_
#define SRC_TELEMETRY_ANOMALY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace msd {

// The SLO knobs (docs/OBSERVABILITY.md "Diagnosis" explains each; TUNING.md
// has the trade-offs). Defaults are deliberately conservative: a fault-free
// steady-state run must fire zero anomalies (asserted by the diagnosis
// bench's fault-free twin).
struct SloPolicy {
  int32_t warmup_steps = 12;   // observations before a signal arms
  int32_t trigger_after = 3;   // consecutive violations to fire
  int32_t clear_after = 8;     // consecutive healthy steps to clear
  double ewma_alpha = 0.2;     // baseline adaptation rate (healthy steps only)
  // Step latency violates when above factor * max(EWMA, warmup quantile) —
  // the quantile floor keeps a fast warmup from producing a hair-trigger.
  double latency_factor = 3.0;
  double latency_quantile = 0.95;
  // Tokens/s violates when below factor * EWMA (0.3 = lost 70% throughput).
  double throughput_factor = 0.3;
  // Cache hit-rate violates when below EWMA - drop (absolute percentage
  // points; hit-rates live in [0,1] so ratios mislead near 0).
  double hit_rate_drop = 0.3;
  // Retry-rate (retries per issued Get) violates when above EWMA + rise.
  double retry_rate_rise = 0.25;
};

// One step's observed signal values. Negative = not observable this step
// (e.g. zero cache lookups); unobservable signals are skipped entirely —
// they neither violate nor heal.
struct SloSample {
  double step_ms = -1.0;
  double tokens_per_sec = -1.0;
  double cache_hit_rate = -1.0;
  double retry_rate = -1.0;
};

// Operator-facing state of one signal (Diagnose / bundle verdict.json).
struct AnomalyState {
  const char* signal = "";
  bool armed = false;
  bool alarmed = false;
  double baseline = 0.0;  // current effective baseline (EWMA side)
  double last = 0.0;      // most recent observation
  int64_t consecutive_violations = 0;
  int64_t fires = 0;  // times this signal transitioned healthy -> alarmed
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(SloPolicy policy);

  // Feeds one step's signals; returns how many signals newly fired.
  int OnStep(const SloSample& sample);

  // Swaps thresholds; learned baselines and alarm states are kept (the
  // service-plane SetSloPolicy retunes a live tenant without re-warming).
  void SetPolicy(const SloPolicy& policy) { policy_ = policy; }
  const SloPolicy& policy() const { return policy_; }

  int64_t active() const;    // currently alarmed signals
  int64_t triggers() const;  // cumulative fire transitions across signals
  std::vector<AnomalyState> States() const;
  std::string RenderJson() const;

 private:
  enum class Direction {
    kFactorAbove,  // violation: obs > factor * baseline (latency)
    kFactorBelow,  // violation: obs < factor * baseline (throughput)
    kDropBelow,    // violation: obs < baseline - delta  (hit-rate)
    kRiseAbove,    // violation: obs > baseline + delta  (retry-rate)
  };

  struct Signal {
    const char* name = "";
    Direction direction = Direction::kFactorAbove;
    RunningStat warmup;
    EmpiricalCdf warmup_cdf;
    bool armed = false;
    double ewma = 0.0;
    double quantile_floor = 0.0;  // latency only: quantile at arm time
    bool alarmed = false;
    int64_t violations = 0;  // consecutive
    int64_t healthy = 0;     // consecutive (while alarmed)
    int64_t fires = 0;
    double last = 0.0;
  };

  // Returns true if the signal newly fired.
  bool Feed(Signal* sig, double obs);
  double Threshold(const Signal& sig) const;

  SloPolicy policy_;
  Signal latency_;
  Signal throughput_;
  Signal hit_rate_;
  Signal retry_rate_;
};

}  // namespace msd

#endif  // SRC_TELEMETRY_ANOMALY_H_
