#include "src/telemetry/trace.h"

#include <atomic>
#include <fstream>
#include <set>
#include <utility>

namespace msd {

namespace {

// Stable small integer per thread: spans recorded by one thread never overlap
// in time, which is exactly Chrome's per-tid invariant.
int32_t ThreadLane() {
  static std::atomic<int32_t> next{1};
  thread_local int32_t lane = next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

}  // namespace

StepTracer::StepTracer(size_t capacity) : epoch_(std::chrono::steady_clock::now()) {
  MSD_CHECK(capacity >= 1);
  ring_.resize(capacity);
}

int64_t StepTracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch_)
      .count();
}

void StepTracer::Record(TraceSpan span) {
  span.lane = ThreadLane();
  std::lock_guard<std::mutex> lock(mu_);
  ring_[pos_] = span;
  pos_ = (pos_ + 1) % ring_.size();
  ++recorded_;
}

int64_t StepTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t StepTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > static_cast<int64_t>(ring_.size())
             ? recorded_ - static_cast<int64_t>(ring_.size())
             : 0;
}

std::vector<TraceSpan> StepTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  const size_t n = recorded_ < static_cast<int64_t>(ring_.size())
                       ? static_cast<size_t>(recorded_)
                       : ring_.size();
  out.reserve(n);
  // Oldest first: with a full ring the next write slot is the oldest entry.
  const size_t start = recorded_ < static_cast<int64_t>(ring_.size()) ? 0 : pos_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string StepTracer::RenderChromeTrace() const {
  const std::vector<TraceSpan> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Metadata: name each pid after its tenant so the viewer groups lanes.
  std::set<IoTenantId> tenants;
  for (const TraceSpan& s : spans) {
    tenants.insert(s.tenant);
  }
  for (IoTenantId tenant : tenants) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(tenant) +
           ",\"args\":{\"name\":\"tenant " + std::to_string(tenant) + "\"}}";
  }
  for (const TraceSpan& s : spans) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"cat\":\"";
    out += s.cat;
    out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(s.ts_us) +
           ",\"dur\":" + std::to_string(s.dur_us) + ",\"pid\":" + std::to_string(s.tenant) +
           ",\"tid\":" + std::to_string(s.lane) + ",\"args\":{\"tenant\":" +
           std::to_string(s.tenant) + ",\"step\":" + std::to_string(s.step) +
           ",\"rank\":" + std::to_string(s.rank) + ",\"attempt\":" + std::to_string(s.attempt) +
           ",\"source\":" + std::to_string(s.source) + ",\"ok\":" + (s.ok ? "true" : "false") +
           "}}";
  }
  out += "]}";
  return out;
}

Status StepTracer::DumpChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open trace file: " + path);
  }
  out << RenderChromeTrace();
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::Ok();
}

ScopedSpan::ScopedSpan(StepTracer* tracer, const char* name, const char* cat, IoTenantId tenant,
                       int64_t step, int32_t rank, int32_t attempt)
    : tracer_(tracer), t0_(std::chrono::steady_clock::now()) {
  span_.name = name;
  span_.cat = cat;
  span_.tenant = tenant;
  span_.step = step;
  span_.rank = rank;
  span_.attempt = attempt;
  if (tracer_ != nullptr) {
    span_.ts_us = tracer_->NowUs();
  }
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) {
    return;
  }
  span_.dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
  tracer_->Record(span_);
}

}  // namespace msd
