#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

namespace msd {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBundlePrefix = "bundle-";

// Parses "<dir>/bundle-<seq>" -> seq, or -1 for anything else.
int64_t BundleSeq(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.rfind(kBundlePrefix, 0) != 0) {
    return -1;
  }
  const std::string digits = name.substr(std::string(kBundlePrefix).size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open bundle file: " + path.string());
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing bundle file: " + path.string());
  }
  return Status::Ok();
}

}  // namespace

FlightRecorder::FlightRecorder(Config config) : config_(std::move(config)) {
  MSD_CHECK(!config_.dir.empty());
  MSD_CHECK(config_.keep_bundles >= 1);
  // Resume numbering past any bundles already on disk (a restarted process
  // must not overwrite an earlier incident's evidence).
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    next_seq_ = std::max(next_seq_, BundleSeq(entry.path()) + 1);
  }
}

Result<std::string> FlightRecorder::Dump(const std::string& reason,
                                         const std::vector<Artifact>& artifacts) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  if (ever_dumped_ &&
      std::chrono::duration_cast<std::chrono::milliseconds>(now - last_dump_).count() <
          config_.min_interval_ms) {
    ++suppressed_;
    return std::string();
  }
  const int64_t seq = next_seq_;
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  const fs::path final_dir = fs::path(config_.dir) / (kBundlePrefix + std::to_string(seq));
  const fs::path tmp_dir = fs::path(config_.dir) / (kBundlePrefix + std::to_string(seq) + ".tmp");
  fs::remove_all(tmp_dir, ec);  // stale staging from a crashed dump
  if (!fs::create_directories(tmp_dir, ec) || ec) {
    return Status::Internal("cannot create bundle staging dir: " + tmp_dir.string());
  }
  for (const Artifact& artifact : artifacts) {
    MSD_RETURN_IF_ERROR(WriteFile(tmp_dir / artifact.filename, artifact.content));
  }
  // Manifest last: a manifest inside the staged dir means every artifact it
  // lists is already durable in that dir.
  const int64_t created_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::system_clock::now().time_since_epoch())
                                 .count();
  std::string manifest = "{\"seq\":" + std::to_string(seq) + ",\"reason\":\"" +
                         JsonEscape(reason) +
                         "\",\"created_unix_ms\":" + std::to_string(created_ms) +
                         ",\"files\":[";
  for (size_t i = 0; i < artifacts.size(); ++i) {
    if (i > 0) {
      manifest += ",";
    }
    manifest += "\"" + JsonEscape(artifacts[i].filename) + "\"";
  }
  manifest += "]}";
  MSD_RETURN_IF_ERROR(WriteFile(tmp_dir / "MANIFEST.json", manifest));
  fs::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Status::Internal("cannot finalize bundle: " + final_dir.string() + ": " +
                            ec.message());
  }
  next_seq_ = seq + 1;
  ++bundles_written_;
  ever_dumped_ = true;
  last_dump_ = now;
  EnforceRetentionLocked();
  return final_dir.string();
}

void FlightRecorder::EnforceRetentionLocked() {
  std::error_code ec;
  std::vector<std::pair<int64_t, fs::path>> bundles;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const int64_t seq = BundleSeq(entry.path());
    if (seq >= 0) {
      bundles.emplace_back(seq, entry.path());
    }
  }
  if (bundles.size() <= static_cast<size_t>(config_.keep_bundles)) {
    return;
  }
  std::sort(bundles.begin(), bundles.end());
  const size_t excess = bundles.size() - static_cast<size_t>(config_.keep_bundles);
  for (size_t i = 0; i < excess; ++i) {
    fs::remove_all(bundles[i].second, ec);
  }
}

int64_t FlightRecorder::bundles_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_written_;
}

int64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

}  // namespace msd
