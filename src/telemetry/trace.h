// StepTracer: a bounded ring of completed spans around the data plane's hot
// phases, exportable as Chrome/Perfetto trace-event JSON.
//
// Span sites (docs/OBSERVABILITY.md has the full glossary):
//   step.plan / step.pop / step.build   producer thread, per produced step
//   step.gate                           producer blocked on a free window slot
//   pop.wait                            one loader's pop, source-labelled
//   step.fetch                          rank pull through the constructor
//   step.stall                          rank pull that blocked on the builder
//   io.get / io.retry / io.hedge        one backing Get attempt each
//
// Recording is a short critical section copying one POD into a preallocated
// ring (no allocation, no I/O); when the ring wraps, the oldest spans are
// overwritten and counted in dropped(). A null tracer pointer disables every
// site — callers guard with `if (tracer != nullptr)` or use ScopedSpan, which
// tolerates null.
//
// Export: Chrome trace-event JSON ("ph":"X" complete events) with
// pid = tenant and tid = a stable per-thread lane, so chrome://tracing or
// Perfetto shows one swimlane group per tenant and a slow step decomposes
// into which phase / which tenant / which backing Get.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/io/block_cache.h"

namespace msd {

// One completed span. `name` and `cat` must be static-lifetime literals —
// spans are recorded from hot paths and must not allocate.
struct TraceSpan {
  const char* name = "";
  const char* cat = "";
  int64_t ts_us = 0;   // start, microseconds since the tracer's epoch
  int64_t dur_us = 0;
  IoTenantId tenant = kDefaultIoTenant;
  int64_t step = -1;   // -1 = not step-scoped (bare io traffic)
  int32_t rank = -1;   // -1 = not rank-scoped (producer / io threads)
  int32_t attempt = 0; // io retry attempt (0 = first try)
  int32_t source = -1; // -1 = not source-scoped (pop.wait detail spans set it)
  int32_t lane = 0;    // stable per-thread lane; becomes the Chrome tid
  bool ok = true;      // false = the spanned operation failed
};

class StepTracer {
 public:
  // `capacity` = spans retained before the ring wraps (must be >= 1).
  explicit StepTracer(size_t capacity);

  StepTracer(const StepTracer&) = delete;
  StepTracer& operator=(const StepTracer&) = delete;

  // Microseconds since the tracer's epoch (steady clock).
  int64_t NowUs() const;

  // Records a completed span, stamping the calling thread's lane.
  void Record(TraceSpan span);

  size_t capacity() const { return ring_.size(); }
  // Spans recorded since construction (including overwritten ones).
  int64_t recorded() const;
  // Spans lost to ring wrap-around.
  int64_t dropped() const;
  // Retained spans, oldest first.
  std::vector<TraceSpan> Snapshot() const;

  // Chrome trace-event JSON: {"traceEvents":[...]} with one "X" event per
  // span plus process_name metadata naming each tenant's lane group.
  std::string RenderChromeTrace() const;
  Status DumpChromeTrace(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  size_t pos_ = 0;        // next write slot
  int64_t recorded_ = 0;  // total Record calls
};

// RAII span: measures construction -> destruction and records into `tracer`
// (null tracer = all no-ops, so call sites need no telemetry-enabled branch).
class ScopedSpan {
 public:
  ScopedSpan(StepTracer* tracer, const char* name, const char* cat, IoTenantId tenant,
             int64_t step = -1, int32_t rank = -1, int32_t attempt = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Marks the spanned operation as failed (spans default to ok).
  void set_ok(bool ok) { span_.ok = ok; }

 private:
  StepTracer* tracer_;
  TraceSpan span_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace msd

#endif  // SRC_TELEMETRY_TRACE_H_
