#include "src/telemetry/bridge.h"

#include <atomic>

#include "src/common/logging.h"
#include "src/data/payload_buffer.h"

namespace msd {

namespace {

void PushCounter(const char* name, IoTenantId tenant, int64_t value,
                 std::vector<MetricPoint>* out) {
  MetricPoint p;
  p.name = name;
  p.kind = MetricKind::kCounter;
  p.tenant = tenant;
  p.value = static_cast<double>(value);
  out->push_back(std::move(p));
}

void PushGauge(const char* name, IoTenantId tenant, double value, std::vector<MetricPoint>* out) {
  MetricPoint p;
  p.name = name;
  p.kind = MetricKind::kGauge;
  p.tenant = tenant;
  p.value = value;
  out->push_back(std::move(p));
}

}  // namespace

void AppendCacheMetrics(const BlockCache::Stats& stats, IoTenantId tenant,
                        std::vector<MetricPoint>* out) {
  PushCounter("msd_cache_lookups_total", tenant, stats.lookups, out);
  PushCounter("msd_cache_hits_total", tenant, stats.hits, out);
  PushCounter("msd_cache_misses_total", tenant, stats.misses, out);
  PushCounter("msd_cache_insertions_total", tenant, stats.insertions, out);
  PushCounter("msd_cache_evictions_total", tenant, stats.evictions, out);
  PushCounter("msd_cache_spill_writes_total", tenant, stats.spill_writes, out);
  PushCounter("msd_cache_spill_hits_total", tenant, stats.spill_hits, out);
  PushCounter("msd_cache_corruptions_total", tenant, stats.corruptions, out);
  PushCounter("msd_cache_cross_tenant_hits_total", tenant, stats.cross_tenant_hits, out);
  PushGauge("msd_cache_resident_bytes", tenant, static_cast<double>(stats.resident_bytes), out);
}

void AppendSchedulerMetrics(const IoScheduler::Stats& stats, IoTenantId tenant,
                            std::vector<MetricPoint>* out) {
  PushCounter("msd_io_requests_total", tenant, stats.requests, out);
  PushCounter("msd_io_cache_hits_total", tenant, stats.cache_hits, out);
  PushCounter("msd_io_coalesced_total", tenant, stats.coalesced, out);
  PushCounter("msd_io_issued_gets_total", tenant, stats.issued_gets, out);
  PushCounter("msd_io_prefetch_issues_total", tenant, stats.prefetch_issues, out);
  PushCounter("msd_io_retries_total", tenant, stats.retries, out);
  PushCounter("msd_io_retry_successes_total", tenant, stats.retry_successes, out);
  PushCounter("msd_io_retries_exhausted_total", tenant, stats.retries_exhausted, out);
  PushCounter("msd_io_failed_gets_total", tenant, stats.failed_gets, out);
  PushCounter("msd_io_hedges_launched_total", tenant, stats.hedges_launched, out);
  PushCounter("msd_io_hedges_won_total", tenant, stats.hedges_won, out);
  PushCounter("msd_io_abandoned_reads_total", tenant, stats.abandoned_reads, out);
  PushCounter("msd_io_invalidations_total", tenant, stats.invalidations, out);
}

void AppendPipelineMetrics(const PrefetchPipeline::Stats& stats, IoTenantId tenant,
                           std::vector<MetricPoint>* out) {
  PushCounter("msd_pipeline_steps_produced_total", tenant, stats.steps_produced, out);
  PushCounter("msd_pipeline_steps_retired_total", tenant, stats.steps_retired, out);
  PushCounter("msd_pipeline_steps_released_total", tenant, stats.steps_released, out);
  PushCounter("msd_pipeline_prefetch_hits_total", tenant, stats.prefetch_hits, out);
  PushCounter("msd_pipeline_prefetch_stalls_total", tenant, stats.prefetch_stalls, out);
  PushCounter("msd_pipeline_produce_retries_total", tenant, stats.produce_retries, out);
  PushGauge("msd_pipeline_queue_depth", tenant, static_cast<double>(stats.queue_depth), out);
  PushGauge("msd_pipeline_last_build_ahead_ms", tenant, stats.last_build_ahead_ms, out);
  int64_t stall_pulls = 0;
  int64_t stall_count = 0;
  double stall_wait_ms = 0.0;
  for (const PrefetchPipeline::RankStall& rs : stats.rank_stalls) {
    stall_pulls += rs.pulls;
    stall_count += rs.stalls;
    stall_wait_ms += rs.wait_ms;
  }
  PushCounter("msd_pipeline_rank_pulls_total", tenant, stall_pulls, out);
  PushCounter("msd_pipeline_rank_stalls_total", tenant, stall_count, out);
  PushGauge("msd_pipeline_rank_stall_wait_ms_total", tenant, stall_wait_ms, out);
}

void AppendStorageMetrics(int64_t gets, int64_t bytes_served, IoTenantId tenant,
                          std::vector<MetricPoint>* out) {
  PushCounter("msd_storage_gets_total", tenant, gets, out);
  PushCounter("msd_storage_bytes_served_total", tenant, bytes_served, out);
}

void AppendFaultMetrics(int64_t faults_injected, int64_t corruptions_injected,
                        int64_t brownout_failures, IoTenantId tenant,
                        std::vector<MetricPoint>* out) {
  PushCounter("msd_faults_injected_total", tenant, faults_injected, out);
  PushCounter("msd_corruptions_injected_total", tenant, corruptions_injected, out);
  PushCounter("msd_brownout_failures_total", tenant, brownout_failures, out);
}

void AppendPayloadMetrics(std::vector<MetricPoint>* out) {
  const int64_t token_copies =
      PayloadPlaneStats::CopiedOutBytes(PayloadKind::kTokens).load(std::memory_order_relaxed);
  const int64_t pixel_copies =
      PayloadPlaneStats::CopiedOutBytes(PayloadKind::kPixels).load(std::memory_order_relaxed);
  const int64_t token_frozen =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kTokens).load(std::memory_order_relaxed) -
      token_copies;
  const int64_t pixel_frozen =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kPixels).load(std::memory_order_relaxed) -
      pixel_copies;
  PushCounter("msd_payload_token_bytes_frozen_total", kMetricNoTenant, token_frozen, out);
  PushCounter("msd_payload_pixel_bytes_frozen_total", kMetricNoTenant, pixel_frozen, out);
  PushCounter("msd_payload_copy_bytes_total", kMetricNoTenant, token_copies + pixel_copies, out);
  PushCounter("msd_payload_arena_slabs_frozen_total", kMetricNoTenant,
              PayloadPlaneStats::ArenaSlabsFrozen().load(std::memory_order_relaxed), out);
}

void AppendLoggingMetrics(std::vector<MetricPoint>* out) {
  PushCounter("msd_log_suppressed_total", kMetricNoTenant, SuppressedLogLines(), out);
}

}  // namespace msd
