#include "src/telemetry/anomaly.h"

#include <algorithm>

#include "src/common/status.h"

namespace msd {

AnomalyDetector::AnomalyDetector(SloPolicy policy) : policy_(policy) {
  MSD_CHECK(policy_.warmup_steps >= 1);
  MSD_CHECK(policy_.trigger_after >= 1);
  MSD_CHECK(policy_.clear_after >= 1);
  MSD_CHECK(policy_.ewma_alpha > 0.0 && policy_.ewma_alpha <= 1.0);
  latency_ = Signal{.name = "step_latency_ms", .direction = Direction::kFactorAbove};
  throughput_ = Signal{.name = "tokens_per_sec", .direction = Direction::kFactorBelow};
  hit_rate_ = Signal{.name = "cache_hit_rate", .direction = Direction::kDropBelow};
  retry_rate_ = Signal{.name = "io_retry_rate", .direction = Direction::kRiseAbove};
}

double AnomalyDetector::Threshold(const Signal& sig) const {
  switch (sig.direction) {
    case Direction::kFactorAbove:
      // The quantile floor keeps one lucky-fast warmup from arming a
      // hair-trigger baseline.
      return policy_.latency_factor * std::max(sig.ewma, sig.quantile_floor);
    case Direction::kFactorBelow:
      return policy_.throughput_factor * sig.ewma;
    case Direction::kDropBelow:
      return sig.ewma - policy_.hit_rate_drop;
    case Direction::kRiseAbove:
      return sig.ewma + policy_.retry_rate_rise;
  }
  return 0.0;
}

bool AnomalyDetector::Feed(Signal* sig, double obs) {
  if (obs < 0.0) {
    return false;  // unobservable this step: neither violates nor heals
  }
  sig->last = obs;
  if (!sig->armed) {
    sig->warmup.Add(obs);
    sig->warmup_cdf.Add(obs);
    if (sig->warmup.count() >= policy_.warmup_steps) {
      sig->armed = true;
      sig->ewma = sig->warmup.mean();
      sig->quantile_floor = sig->warmup_cdf.Quantile(policy_.latency_quantile);
    }
    return false;
  }
  const double threshold = Threshold(*sig);
  bool violated = false;
  switch (sig->direction) {
    case Direction::kFactorAbove:
    case Direction::kRiseAbove:
      violated = obs > threshold;
      break;
    case Direction::kFactorBelow:
    case Direction::kDropBelow:
      violated = obs < threshold;
      break;
  }
  bool fired = false;
  if (violated) {
    sig->healthy = 0;
    if (++sig->violations >= policy_.trigger_after && !sig->alarmed) {
      sig->alarmed = true;
      ++sig->fires;
      fired = true;
    }
  } else {
    sig->violations = 0;
    // The baseline adapts only on healthy steps: a sustained regression must
    // not average itself into the baseline and silence the alarm.
    sig->ewma = (1.0 - policy_.ewma_alpha) * sig->ewma + policy_.ewma_alpha * obs;
    if (sig->alarmed && ++sig->healthy >= policy_.clear_after) {
      sig->alarmed = false;
      sig->healthy = 0;
    }
  }
  return fired;
}

int AnomalyDetector::OnStep(const SloSample& sample) {
  int fired = 0;
  fired += Feed(&latency_, sample.step_ms) ? 1 : 0;
  fired += Feed(&throughput_, sample.tokens_per_sec) ? 1 : 0;
  fired += Feed(&hit_rate_, sample.cache_hit_rate) ? 1 : 0;
  fired += Feed(&retry_rate_, sample.retry_rate) ? 1 : 0;
  return fired;
}

int64_t AnomalyDetector::active() const {
  int64_t n = 0;
  for (const Signal* sig : {&latency_, &throughput_, &hit_rate_, &retry_rate_}) {
    n += sig->alarmed ? 1 : 0;
  }
  return n;
}

int64_t AnomalyDetector::triggers() const {
  int64_t n = 0;
  for (const Signal* sig : {&latency_, &throughput_, &hit_rate_, &retry_rate_}) {
    n += sig->fires;
  }
  return n;
}

std::vector<AnomalyState> AnomalyDetector::States() const {
  std::vector<AnomalyState> out;
  out.reserve(4);
  for (const Signal* sig : {&latency_, &throughput_, &hit_rate_, &retry_rate_}) {
    AnomalyState s;
    s.signal = sig->name;
    s.armed = sig->armed;
    s.alarmed = sig->alarmed;
    s.baseline = sig->ewma;
    s.last = sig->last;
    s.consecutive_violations = sig->violations;
    s.fires = sig->fires;
    out.push_back(s);
  }
  return out;
}

std::string AnomalyDetector::RenderJson() const {
  std::string out = "{\"active\":" + std::to_string(active()) +
                    ",\"triggers_total\":" + std::to_string(triggers()) + ",\"signals\":[";
  bool first = true;
  for (const AnomalyState& s : States()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"signal\":\"";
    out += s.signal;
    out += "\",\"armed\":";
    out += s.armed ? "true" : "false";
    out += ",\"alarmed\":";
    out += s.alarmed ? "true" : "false";
    out += ",\"baseline\":" + std::to_string(s.baseline) +
           ",\"last\":" + std::to_string(s.last) +
           ",\"consecutive_violations\":" + std::to_string(s.consecutive_violations) +
           ",\"fires\":" + std::to_string(s.fires) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace msd
