#include "src/telemetry/attribution.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "src/common/status.h"

namespace msd {

namespace {

struct Interval {
  int64_t begin = 0;
  int64_t end = 0;
};

// Total covered length of the interval union (inputs need not be disjoint).
int64_t UnionLength(std::vector<Interval> intervals) {
  if (intervals.empty()) {
    return 0;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  int64_t total = 0;
  int64_t cur_begin = intervals[0].begin;
  int64_t cur_end = intervals[0].end;
  for (size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].begin > cur_end) {
      total += cur_end - cur_begin;
      cur_begin = intervals[i].begin;
      cur_end = intervals[i].end;
    } else {
      cur_end = std::max(cur_end, intervals[i].end);
    }
  }
  total += cur_end - cur_begin;
  return total;
}

double UsToMs(int64_t us) { return static_cast<double>(us) / 1000.0; }

void AppendField(std::string* out, const char* key, double value, bool* first) {
  if (!*first) {
    *out += ",";
  }
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":" + std::to_string(value);
}

void AppendField(std::string* out, const char* key, int64_t value, bool* first) {
  if (!*first) {
    *out += ",";
  }
  *first = false;
  *out += "\"";
  *out += key;
  *out += "\":" + std::to_string(value);
}

}  // namespace

const char* ToString(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::kHealthy:
      return "healthy";
    case BottleneckKind::kIoBound:
      return "io-bound";
    case BottleneckKind::kDecodeBound:
      return "decode-bound";
    case BottleneckKind::kConsumerBound:
      return "consumer-bound";
  }
  return "unknown";
}

StallAttribution::StallAttribution(Config config) : config_(config) {
  MSD_CHECK(config_.window_steps >= 1);
  MSD_CHECK(config_.history_steps >= config_.window_steps);
  MSD_CHECK(config_.dominance_threshold > 0.0 && config_.dominance_threshold <= 1.0);
}

int StallAttribution::Observe(const std::vector<TraceSpan>& spans) {
  // A step is complete once the producer records its step.gate span (the
  // last span of the production round). Finalize strictly in step order so
  // the rolling window never sees a gap filled retroactively.
  std::set<int64_t> ready;
  for (const TraceSpan& s : spans) {
    if (s.tenant == config_.tenant && s.step > last_finalized_ &&
        std::strcmp(s.name, "step.gate") == 0) {
      ready.insert(s.step);
    }
  }
  int finalized = 0;
  for (int64_t step : ready) {
    Finalize(spans, step);
    last_finalized_ = step;
    ++finalized;
  }
  while (history_.size() > config_.history_steps) {
    history_.pop_front();
  }
  return finalized;
}

void StallAttribution::Finalize(const std::vector<TraceSpan>& spans, int64_t step) {
  const TraceSpan* gate = nullptr;
  const TraceSpan* plan = nullptr;
  const TraceSpan* pop = nullptr;
  const TraceSpan* build = nullptr;
  std::map<int32_t, int64_t> pop_wait_by_source;  // us
  std::vector<Interval> io_all;
  std::vector<Interval> io_retry;
  // First pass: the step-scoped producer spans define the pop window.
  for (const TraceSpan& s : spans) {
    if (s.tenant != config_.tenant || s.step != step) {
      continue;
    }
    if (std::strcmp(s.name, "step.gate") == 0) {
      gate = &s;
    } else if (std::strcmp(s.name, "step.plan") == 0) {
      plan = &s;
    } else if (std::strcmp(s.name, "step.pop") == 0) {
      pop = &s;
    } else if (std::strcmp(s.name, "step.build") == 0) {
      build = &s;
    } else if (std::strcmp(s.name, "pop.wait") == 0 && s.source >= 0) {
      pop_wait_by_source[s.source] += s.dur_us;
    }
  }
  // Second pass: io spans carry no step id (the scheduler serves coalesced,
  // cross-step traffic) — clip them to this step's pop window by time.
  if (pop != nullptr && pop->dur_us > 0) {
    const int64_t window_begin = pop->ts_us;
    const int64_t window_end = pop->ts_us + pop->dur_us;
    for (const TraceSpan& s : spans) {
      if (s.tenant != config_.tenant) {
        continue;
      }
      const bool is_retry =
          std::strcmp(s.name, "io.retry") == 0 || std::strcmp(s.name, "io.hedge") == 0;
      if (!is_retry && std::strcmp(s.name, "io.get") != 0) {
        continue;
      }
      const int64_t begin = std::max(s.ts_us, window_begin);
      const int64_t end = std::min(s.ts_us + s.dur_us, window_end);
      if (end <= begin) {
        continue;
      }
      io_all.push_back({begin, end});
      if (is_retry) {
        io_retry.push_back({begin, end});
      }
    }
  }

  StepBreakdown b;
  b.step = step;
  b.consumer_stall_ms = gate != nullptr ? UsToMs(gate->dur_us) : 0.0;
  b.plan_ms = plan != nullptr ? UsToMs(plan->dur_us) : 0.0;
  b.build_ms = build != nullptr ? UsToMs(build->dur_us) : 0.0;
  const int64_t retry_us = UnionLength(std::move(io_retry));
  const int64_t io_total_us = UnionLength(std::move(io_all));
  b.io_retry_ms = UsToMs(retry_us);
  b.io_backing_ms = UsToMs(std::max<int64_t>(0, io_total_us - retry_us));
  const double pop_ms = pop != nullptr ? UsToMs(pop->dur_us) : 0.0;
  b.pop_wait_ms = std::max(0.0, pop_ms - b.io_backing_ms - b.io_retry_ms);

  // Wall clock: gate start (the slot claim precedes everything) to build end.
  int64_t begin_us = gate != nullptr ? gate->ts_us
                     : plan != nullptr ? plan->ts_us
                                       : 0;
  int64_t end_us = begin_us;
  for (const TraceSpan* s : {gate, plan, pop, build}) {
    if (s != nullptr) {
      begin_us = std::min(begin_us, s->ts_us);
      end_us = std::max(end_us, s->ts_us + s->dur_us);
    }
  }
  b.wall_ms = UsToMs(std::max<int64_t>(0, end_us - begin_us));
  const double accounted =
      b.consumer_stall_ms + b.plan_ms + pop_ms + b.build_ms;
  b.other_ms = std::max(0.0, b.wall_ms - accounted);

  for (const auto& [source, us] : pop_wait_by_source) {
    if (UsToMs(us) > b.dominant_source_ms) {
      b.dominant_source_ms = UsToMs(us);
      b.dominant_source = source;
    }
  }
  history_.push_back(b);
}

BottleneckVerdict StallAttribution::Verdict() const {
  BottleneckVerdict v;
  const size_t n = std::min(history_.size(), config_.window_steps);
  if (n == 0) {
    return v;
  }
  double wall = 0.0;
  double io = 0.0;
  double decode = 0.0;
  double consumer = 0.0;
  std::map<int32_t, double> source_ms;
  for (size_t i = history_.size() - n; i < history_.size(); ++i) {
    const StepBreakdown& b = history_[i];
    wall += b.wall_ms;
    io += b.io_backing_ms + b.io_retry_ms;
    decode += b.pop_wait_ms;
    consumer += b.consumer_stall_ms;
    if (b.dominant_source >= 0) {
      source_ms[b.dominant_source] += b.dominant_source_ms;
    }
    v.last_step = std::max(v.last_step, b.step);
  }
  v.steps_observed = static_cast<int64_t>(n);
  if (wall <= 0.0) {
    return v;
  }
  v.io_fraction = io / wall;
  v.decode_fraction = decode / wall;
  v.consumer_fraction = consumer / wall;
  double best_ms = 0.0;
  for (const auto& [source, ms] : source_ms) {
    if (ms > best_ms) {
      best_ms = ms;
      v.dominant_source = source;
    }
  }
  const double top =
      std::max({v.io_fraction, v.decode_fraction, v.consumer_fraction});
  if (top < config_.dominance_threshold) {
    // Healthy: confidence is the share of windowed wall time NOT spent in
    // the worst stall family.
    v.confidence = 1.0 - top;
    return v;
  }
  v.confidence = top;
  if (top == v.io_fraction) {
    v.kind = BottleneckKind::kIoBound;
  } else if (top == v.decode_fraction) {
    v.kind = BottleneckKind::kDecodeBound;
  } else {
    v.kind = BottleneckKind::kConsumerBound;
  }
  return v;
}

std::vector<StepBreakdown> StallAttribution::History() const {
  return std::vector<StepBreakdown>(history_.begin(), history_.end());
}

std::vector<StepBreakdown> StallAttribution::Recent(size_t n) const {
  const size_t take = std::min(n, history_.size());
  return std::vector<StepBreakdown>(history_.end() - static_cast<ptrdiff_t>(take),
                                    history_.end());
}

std::string StallAttribution::RenderHistoryJson() const {
  const BottleneckVerdict v = Verdict();
  std::string out = "{\"tenant\":" + std::to_string(config_.tenant) +
                    ",\"window_steps\":" + std::to_string(config_.window_steps) +
                    ",\"verdict\":{\"kind\":\"";
  out += ToString(v.kind);
  out += "\"";
  bool first = false;
  AppendField(&out, "confidence", v.confidence, &first);
  AppendField(&out, "dominant_source", static_cast<int64_t>(v.dominant_source), &first);
  AppendField(&out, "io_fraction", v.io_fraction, &first);
  AppendField(&out, "decode_fraction", v.decode_fraction, &first);
  AppendField(&out, "consumer_fraction", v.consumer_fraction, &first);
  AppendField(&out, "steps_observed", v.steps_observed, &first);
  AppendField(&out, "last_step", v.last_step, &first);
  out += "},\"steps\":[";
  bool first_step = true;
  for (const StepBreakdown& b : history_) {
    if (!first_step) {
      out += ",";
    }
    first_step = false;
    out += "{";
    bool f = true;
    AppendField(&out, "step", b.step, &f);
    AppendField(&out, "wall_ms", b.wall_ms, &f);
    AppendField(&out, "consumer_stall_ms", b.consumer_stall_ms, &f);
    AppendField(&out, "plan_ms", b.plan_ms, &f);
    AppendField(&out, "pop_wait_ms", b.pop_wait_ms, &f);
    AppendField(&out, "io_backing_ms", b.io_backing_ms, &f);
    AppendField(&out, "io_retry_ms", b.io_retry_ms, &f);
    AppendField(&out, "build_ms", b.build_ms, &f);
    AppendField(&out, "other_ms", b.other_ms, &f);
    AppendField(&out, "dominant_source", static_cast<int64_t>(b.dominant_source), &f);
    AppendField(&out, "dominant_source_ms", b.dominant_source_ms, &f);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace msd
