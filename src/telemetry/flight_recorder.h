// FlightRecorder: atomically dumps self-contained diagnostic bundles.
//
// On a health trigger, the monitor hands the recorder a set of artifacts
// (Chrome trace, metrics snapshot JSON, attribution history, log tail,
// triggering verdict) and the recorder writes them to
//
//   <dir>/bundle-<seq>/
//     MANIFEST.json   reason, seq, timestamp, file list — written LAST
//     <artifact>...   e.g. trace.json, metrics.json, attribution.json,
//                     verdict.json, log_tail.txt
//
// Atomicity: everything is staged into bundle-<seq>.tmp/ and renamed into
// place in one filesystem rename, so a reader (msd_diagnose, a human with
// `ls`) never sees a half-written bundle — the directory either exists with
// a complete manifest or not at all.
//
// Bounded: at most `keep_bundles` newest bundles are retained (older ones
// removed after each dump), and dumps are rate-limited to one per
// `min_interval_ms` (suppressed dumps are counted, not queued).
//
// Shared: one recorder may serve every tenant of a DataService plane —
// Dump() is thread-safe and tags the reason string, and the global rate
// limit keeps a plane-wide incident from writing one bundle per tenant.
#ifndef SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace msd {

class FlightRecorder {
 public:
  struct Config {
    std::string dir;  // created on first dump if missing; must be non-empty
    int32_t keep_bundles = 4;
    int64_t min_interval_ms = 500;
  };

  // One file inside a bundle.
  struct Artifact {
    std::string filename;
    std::string content;
  };

  explicit FlightRecorder(Config config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Writes one bundle. Returns the final bundle directory path; an empty
  // string when the dump was rate-limited (counted in suppressed()); an
  // error status when the filesystem failed.
  Result<std::string> Dump(const std::string& reason,
                           const std::vector<Artifact>& artifacts);

  int64_t bundles_written() const;
  int64_t suppressed() const;
  const std::string& dir() const { return config_.dir; }

 private:
  void EnforceRetentionLocked();

  Config config_;
  mutable std::mutex mu_;
  int64_t next_seq_ = 0;  // initialized past any bundles already on disk
  int64_t bundles_written_ = 0;
  int64_t suppressed_ = 0;
  bool ever_dumped_ = false;
  std::chrono::steady_clock::time_point last_dump_;
};

}  // namespace msd

#endif  // SRC_TELEMETRY_FLIGHT_RECORDER_H_
