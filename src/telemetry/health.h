// HealthMonitor: the per-session diagnosis plane tying the three stage-two
// parts together — stall attribution over the span ring, SLO baselines with
// hysteresis-guarded anomaly detection, and the flight recorder.
//
// Strictly read-side: the monitor consumes spans and cumulative counters the
// data plane already produces, and never feeds anything back into planning,
// popping, or building — byte-identity of delivered batches with the monitor
// on vs off is an invariant (enforced by tests/diagnosis_test.cc).
//
// Flow, once per produced step (Session::HealthTick on the producer thread):
//   1. ingest a fresh tracer snapshot into StallAttribution (finalizes every
//      newly complete step's exclusive-bucket breakdown),
//   2. turn the step's cumulative counters into per-step SLO signals (the
//      monitor diffs internally) and feed the AnomalyDetector,
//   3. on the first active alarm (0 -> >0 transition) or any hard event
//      (watchdog promotion, source quarantine, produce-retry exhaustion),
//      dump one flight-recorder bundle — rate-limited, so an incident yields
//      one bundle, not one per symptom.
//
// Exported series (registered on the session's registry, tenant-labelled):
//   msd_health_verdict       gauge   BottleneckKind as int (0 healthy,
//                                    1 io-bound, 2 decode-bound,
//                                    3 consumer-bound)
//   msd_health_confidence    gauge   verdict confidence in [0,1]
//   msd_anomalies_active     gauge   currently alarmed SLO signals
//   msd_anomaly_triggers_total   counter  alarm fires + hard events
//   msd_recorder_bundles_total   counter  bundles written for this tenant
#ifndef SRC_TELEMETRY_HEALTH_H_
#define SRC_TELEMETRY_HEALTH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/telemetry/anomaly.h"
#include "src/telemetry/attribution.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace msd {

struct HealthOptions {
  bool enabled = false;
  SloPolicy slo;
  // tenant / window / dominance knobs; `attribution.tenant` is overridden
  // with the session's io tenant at wiring time.
  StallAttribution::Config attribution;
  // Flight recorder: either a directory for a monitor-owned recorder, or a
  // recorder shared across tenants (the DataService plane injects one; it
  // takes precedence). Both empty/null = triggers fire but nothing dumps.
  std::string recorder_dir;
  int32_t recorder_keep_bundles = 4;
  int64_t recorder_min_interval_ms = 500;
  std::shared_ptr<FlightRecorder> recorder;
  // Bounded tail of recent log lines captured into bundles (0 = no tap).
  size_t log_ring_lines = 256;
};

// One produced step's raw inputs. Counter fields are CUMULATIVE session
// totals as of this step — the monitor diffs consecutive observations
// itself, so callers never carry per-step state.
struct StepObservation {
  int64_t step = 0;
  double step_ms = 0.0;  // build-ahead wall time (plan+pop+build)
  int64_t tokens = 0;    // planned tokens in this step
  int64_t cache_lookups = 0;
  int64_t cache_hits = 0;
  int64_t io_retries = 0;
  int64_t io_issued_gets = 0;
  int64_t quarantined_sources = 0;  // cumulative quarantine count
  int64_t watchdog_detections = 0;  // cumulative promotions
};

// Everything Diagnose() answers with (Session::health()->Diagnose(), the
// DataService Diagnose(tenant) RPC surface).
struct HealthReport {
  BottleneckVerdict verdict;
  std::vector<StepBreakdown> recent;  // newest window, oldest first
  std::vector<AnomalyState> anomalies;
  int64_t anomalies_active = 0;
  int64_t triggers_total = 0;  // alarm fires + hard events
  int64_t hard_events = 0;
  int64_t bundles_written = 0;  // this monitor's dumps (not plane-wide)
};

class HealthMonitor {
 public:
  // `metrics` may be null (series just aren't exported); `tracer` may be
  // null (attribution sees no spans, verdict stays healthy).
  HealthMonitor(HealthOptions options, IoTenantId tenant, MetricsRegistry* metrics,
                StepTracer* tracer);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Producer thread, once per produced step.
  void OnStepProduced(const StepObservation& obs);

  // Immediate trigger from a hard event (any thread): "watchdog-promotion",
  // "source-quarantine", "produce-exhausted". Dumps a bundle (rate-limited)
  // without waiting for statistical confirmation.
  void OnHardEvent(const char* kind, const std::string& detail);

  // Current verdict + breakdown + anomaly states (any thread). Ingests a
  // fresh tracer snapshot first, so it is accurate even between steps.
  HealthReport Diagnose();

  void SetSloPolicy(const SloPolicy& policy);

  FlightRecorder* recorder() { return recorder_.get(); }
  LogRing* log_ring() { return log_ring_.get(); }
  const HealthOptions& options() const { return options_; }

 private:
  void IngestLocked();
  void ExportLocked();
  void DumpLocked(const std::string& reason);

  HealthOptions options_;
  const IoTenantId tenant_;
  MetricsRegistry* metrics_;
  StepTracer* tracer_;

  std::mutex mu_;
  StallAttribution attribution_;
  AnomalyDetector detector_;
  std::shared_ptr<FlightRecorder> recorder_;
  std::unique_ptr<LogRing> log_ring_;
  bool has_prev_ = false;
  StepObservation prev_;
  int64_t hard_events_ = 0;
  int64_t bundles_written_ = 0;

  // Cached instrument pointers (stable for the registry's lifetime).
  Gauge* verdict_gauge_ = nullptr;
  Gauge* confidence_gauge_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Counter* triggers_counter_ = nullptr;
  Counter* bundles_counter_ = nullptr;
};

}  // namespace msd

#endif  // SRC_TELEMETRY_HEALTH_H_
