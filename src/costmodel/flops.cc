#include "src/costmodel/flops.h"

#include "src/common/status.h"

namespace msd {

double AttentionFlops(const ModelConfig& config, const std::vector<int32_t>& segment_lengths) {
  double h = config.hidden;
  double sum_sq = 0.0;
  for (int32_t l : segment_lengths) {
    sum_sq += static_cast<double>(l) * static_cast<double>(l);
  }
  // Scores (2*l^2*h) + attention-weighted values (2*l^2*h) per layer.
  return 4.0 * h * sum_sq * static_cast<double>(config.layers);
}

double ForwardFlops(const ModelConfig& config, const std::vector<int32_t>& segment_lengths) {
  double h = config.hidden;
  double ffn = config.EffectiveFfn();
  double total_tokens = 0.0;
  for (int32_t l : segment_lengths) {
    MSD_CHECK(l >= 0);
    total_tokens += l;
  }
  // Per layer, per token: QKVO projections 8h^2; MLP 4*h*ffn (up+down, x topk
  // for MoE — only activated experts run).
  double experts = config.IsMoe() ? static_cast<double>(config.moe_topk) : 1.0;
  double per_layer_linear = total_tokens * (8.0 * h * h + 4.0 * h * ffn * experts);
  double linear = per_layer_linear * static_cast<double>(config.layers);
  double attention = AttentionFlops(config, segment_lengths);
  // LM head: 2 * tokens * h * vocab (encoders have vocab == 0).
  double head = 2.0 * total_tokens * h * static_cast<double>(config.vocab);
  return linear + attention + head;
}

double ForwardFlopsUniform(const ModelConfig& config, int64_t seq_len) {
  return ForwardFlops(config, {static_cast<int32_t>(seq_len)});
}

double EncoderFlops(const ModelConfig& encoder, int64_t patches) {
  // ViT attends over the full patch sequence of one image (no packing masks).
  return ForwardFlopsUniform(encoder, patches);
}

double BackboneSampleFlops(const ModelConfig& backbone, const SampleMeta& meta) {
  return ForwardFlops(backbone, {meta.TotalTokens()});
}

SimTime FlopsLatency(double flops, const DeviceSpec& device) {
  MSD_CHECK(device.flops_per_sec > 0.0);
  return FromSeconds(flops / device.flops_per_sec);
}

}  // namespace msd
