#include "src/costmodel/model_config.h"

#include <cstdio>

namespace msd {

ModelConfig ViT1B() {
  ModelConfig c;
  c.name = "ViT-1B";
  c.layers = 39;
  c.heads = 16;
  c.hidden = 1408;
  c.ffn_hidden = 6144;
  c.patch_size = 14;
  return c;
}

ModelConfig ViT2B() {
  ModelConfig c;
  c.name = "ViT-2B";
  c.layers = 48;
  c.heads = 16;
  c.hidden = 1664;
  c.ffn_hidden = 8192;
  c.patch_size = 14;
  return c;
}

ModelConfig Llama12B() {
  ModelConfig c;
  c.name = "Llama-12B";
  c.layers = 45;
  c.heads = 36;
  c.hidden = 4608;
  c.vocab = 128256;
  return c;
}

ModelConfig TMoE25B() {
  ModelConfig c;
  c.name = "tMoE-25B";
  c.layers = 42;
  c.heads = 16;
  c.hidden = 2048;
  c.vocab = 128256;
  c.moe_topk = 2;
  c.num_experts = 16;
  return c;
}

ModelConfig Mixtral8x7B() {
  ModelConfig c;
  c.name = "Mixtral-8x7B";
  c.layers = 32;
  c.heads = 32;
  c.hidden = 4096;
  c.ffn_hidden = 14336;
  c.vocab = 32000;
  c.moe_topk = 2;
  c.num_experts = 8;
  return c;
}

std::string ModelConfigTable() {
  const ModelConfig configs[] = {ViT1B(), ViT2B(), Llama12B(), TMoE25B(), Mixtral8x7B()};
  std::string out =
      "Table 1: Model configurations\n"
      "  Model         #Layers  #Heads  Hidden  topk\n";
  char line[128];
  for (const ModelConfig& c : configs) {
    std::snprintf(line, sizeof(line), "  %-12s  %7d  %6d  %6d  %4d\n", c.name.c_str(), c.layers,
                  c.heads, c.hidden, c.moe_topk);
    out += line;
  }
  return out;
}

}  // namespace msd
