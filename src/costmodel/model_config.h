// Model configurations from Table 1 plus the device spec of the testbed.
#ifndef SRC_COSTMODEL_MODEL_CONFIG_H_
#define SRC_COSTMODEL_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace msd {

struct ModelConfig {
  std::string name;
  int32_t layers = 0;
  int32_t heads = 0;
  int32_t hidden = 0;
  int32_t ffn_hidden = 0;   // 0 => 4 * hidden
  int32_t vocab = 0;        // 0 for encoders
  int32_t moe_topk = 0;     // 0 => dense; otherwise experts activated per token
  int32_t num_experts = 0;  // total experts (MoE only)
  int32_t patch_size = 0;   // encoders: pixels per patch edge

  int32_t EffectiveFfn() const { return ffn_hidden > 0 ? ffn_hidden : 4 * hidden; }
  bool IsMoe() const { return moe_topk > 0; }
};

// Table 1 presets.
ModelConfig ViT1B();       // 39 layers, 16 heads, hidden 1408
ModelConfig ViT2B();       // 48 layers, 16 heads, hidden 1664
ModelConfig Llama12B();    // 45 layers, 36 heads, hidden 4608
ModelConfig TMoE25B();     // 42 layers, 16 heads, hidden 2048, topk=2
ModelConfig Mixtral8x7B(); // 32 layers, 32 heads, hidden 4096, topk=2

// Per-GPU effective throughput (NVIDIA L20-class with realistic MFU).
struct DeviceSpec {
  double flops_per_sec = 30e12;
};

std::string ModelConfigTable();  // Table 1 rendering for bench headers

}  // namespace msd

#endif  // SRC_COSTMODEL_MODEL_CONFIG_H_
