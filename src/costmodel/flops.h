// Analytic FLOPs/latency models — the `cost()` functions of Sec. 4.2.
//
// "We model the encoder's cost as a function of the image sequence length,
//  the dimensions of the embedding and MLP layers, and the model's depth. The
//  cost for the language backbone is likewise modeled as a function of the
//  total sequence length and key architectural parameters, such as the number
//  of experts per token, vocabulary size, and hidden layer dimensions."
//
// Attention is quadratic per *segment* (packed sequences carry segment masks,
// so cross-segment attention is masked out), which is the source of the
// paper's 30/70-vs-50/50 = +16% example.
#ifndef SRC_COSTMODEL_FLOPS_H_
#define SRC_COSTMODEL_FLOPS_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/costmodel/model_config.h"
#include "src/data/sample.h"

namespace msd {

// Quadratic attention-score term only: 4 * hidden * sum(l_i^2).
double AttentionFlops(const ModelConfig& config, const std::vector<int32_t>& segment_lengths);

// Full forward FLOPs of one transformer stack over a packed sequence.
// Includes QKVO projections, attention, MLP (MoE-aware), and LM head.
double ForwardFlops(const ModelConfig& config, const std::vector<int32_t>& segment_lengths);

// Convenience for a single unsegmented sequence.
double ForwardFlopsUniform(const ModelConfig& config, int64_t seq_len);

// Encoder cost for an image subsequence of `patches` patches.
double EncoderFlops(const ModelConfig& encoder, int64_t patches);

// Backbone cost for one sample's interleaved sequence (text + image tokens).
double BackboneSampleFlops(const ModelConfig& backbone, const SampleMeta& meta);

// Training step ~ 3x forward (forward + 2x backward).
inline constexpr double kTrainFlopsMultiplier = 3.0;

// Virtual latency of executing `flops` on one device.
SimTime FlopsLatency(double flops, const DeviceSpec& device);

}  // namespace msd

#endif  // SRC_COSTMODEL_FLOPS_H_
