// Durable checkpoint & elastic resume (job-level differential checkpointing).
//
// MegaScale-Data's Sec. 6.1 recovery story — low-frequency loader snapshots
// plus a high-frequency plan journal — only survives as long as the process
// does. This subsystem makes the whole data-plane position durable: a
// CheckpointWriter serializes it through the wire.h codec into an
// ObjectStore (disk-backed for real durability), and a CheckpointReader
// restores it into a brand-new Session, possibly on a *different* mesh
// (dp/pp/cp/tp and prefetch depth may all change — elastic resume).
//
// What is committed (see CheckpointState):
//   - the pipeline's committed-step frontier C (first step not fully
//     consumed) and produce frontier P (first step never planned), plus the
//     per-rank cursors;
//   - the Planner's replayable state twice: as of step C-1 (for resumes
//     that must replan, e.g. a DP-degree change re-buckets every plan) and
//     as of P-1 (for resumes that replay the journaled in-flight plans
//     [C, P) against the new mesh — the same machinery Reshard() uses);
//   - every Source Loader's differential snapshot as of step C-1 (read
//     cursor + consumed ids; deterministic refill rebuilds the buffer);
//   - the journaled LoadingPlans for the in-flight window [C, P);
//   - a fingerprint of the options that must match at resume (corpus,
//     seed, step shape) — the mesh intentionally excluded.
//
// Constructors hold no checkpointable state: their resident StepData is
// derived (plan x slices) and is reconstructed by normal production.
//
// Two-phase commit: every component blob is staged first (each Put is
// itself atomic), the manifest — carrying sizes + FNV-1a checksums of every
// blob — is written next, and only then is the LATEST pointer atomically
// flipped to the new checkpoint id. A crash anywhere before the flip leaves
// the previous checkpoint intact and discoverable; a corrupt blob is caught
// by checksum at load time.
#ifndef SRC_CHECKPOINT_CHECKPOINT_H_
#define SRC_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/mesh/parallelism.h"
#include "src/planner/planner.h"
#include "src/storage/object_store.h"

namespace msd {

// v2: planner state carries the source-quarantine maps.
// v3: planner state carries the mixture-schedule override map
//     (src/plan/mixture_schedule.h — client-fed re-weighting).
inline constexpr uint32_t kCheckpointFormatVersion = 3;
// Pointer blob naming the latest fully published checkpoint id.
inline constexpr char kCheckpointLatestKey[] = "LATEST";

// Options that must be identical between the checkpointed job and the
// resuming one for the replay to be byte-faithful. The mesh and prefetch
// depth are deliberately NOT part of it — those may change elastically.
struct CheckpointFingerprint {
  uint64_t corpus_hash = 0;  // sources: id, name, shape, effective rows/file
  uint64_t seed = 0;
  int64_t samples_per_step = 0;
  int32_t max_seq_len = 0;
  int32_t num_microbatches = 0;
  int32_t loader_workers = 0;  // drives auto-partitioning => loader identity
  uint8_t strategy = 0;
  uint8_t balance_method = 0;
  uint8_t defer_image_decode = 0;

  bool operator==(const CheckpointFingerprint&) const = default;
};

// Everything a resumed job needs. See the file comment for the roles.
struct CheckpointState {
  int64_t commit_step = 0;       // C: resume consumes/produces from here
  int64_t produce_frontier = 0;  // P: first step never planned before save
  ParallelismSpec mesh;          // mesh at checkpoint time (informational)
  int32_t prefetch_depth = 0;
  std::vector<int64_t> cursors;  // per-rank next unconsumed step

  PlannerCheckpoint planner_at_commit;    // as of after plan C-1
  PlannerCheckpoint planner_at_frontier;  // as of after plan P-1

  // loader_id -> LoaderSnapshot bytes, state as of after the pops of C-1.
  std::map<int32_t, std::string> loader_snapshots;
  // step -> serialized LoadingPlan for the in-flight window [C, P).
  std::map<int64_t, std::string> plan_journal;

  bool fault_tolerance = false;  // FT counters carried for observability
  int64_t ft_snapshots_taken = 0;
  int64_t ft_promotions = 0;

  CheckpointFingerprint fingerprint;
};

class CheckpointWriter {
 public:
  struct Options {
    // Crash injection for tests: stage every blob and the manifest, but
    // never flip the LATEST pointer — exactly the window a real crash
    // between blob write and manifest publish would hit.
    bool abort_before_publish = false;
    // Retention: after a successful LATEST flip, delete all but the newest
    // `keep_generations` ckpt-* generations (orphans from aborted publishes
    // included). The generation LATEST names is never deleted. 0 keeps
    // everything; GC never runs on an aborted (unpublished) write.
    int32_t keep_generations = 0;
  };

  CheckpointWriter(ObjectStore* store, Options options);
  explicit CheckpointWriter(ObjectStore* store) : CheckpointWriter(store, Options{}) {}

  // Two-phase commit of `state`; returns the published checkpoint id.
  // Under abort_before_publish the staged id is returned but LATEST still
  // names the previous checkpoint (or nothing).
  Result<std::string> Write(const CheckpointState& state);

 private:
  // Deletes every blob of ckpt-* generations older than the newest
  // keep_generations, sparing the generation LATEST points at. Best-effort:
  // a failed delete is skipped (retried by the next write's GC).
  void GarbageCollect() const;

  ObjectStore* store_;
  Options options_;
};

class CheckpointReader {
 public:
  // Loads the checkpoint LATEST points to, verifying format version and
  // every blob checksum. NotFound when the store has no published
  // checkpoint; DataLoss on version/checksum mismatch.
  static Result<CheckpointState> Load(const ObjectStore& store);
  static Result<CheckpointState> LoadId(const ObjectStore& store, const std::string& id);
  static Result<std::string> LatestId(const ObjectStore& store);
};

}  // namespace msd

#endif  // SRC_CHECKPOINT_CHECKPOINT_H_
