#include "src/checkpoint/state_journal.h"

#include "src/common/logging.h"

namespace msd {

StepStateJournal::StepStateJournal(size_t capacity) : capacity_(capacity) {
  MSD_CHECK(capacity_ >= 1);
}

void StepStateJournal::Record(StepStateEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  MSD_CHECK(entries_.empty() || entry.step > entries_.back().step);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) {
    entries_.pop_front();
  }
}

std::optional<StepStateEntry> StepStateJournal::EntryFor(int64_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StepStateEntry& entry : entries_) {
    if (entry.step == step) {
      return entry;
    }
  }
  return std::nullopt;
}

int64_t StepStateJournal::newest_step() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? -1 : entries_.back().step;
}

}  // namespace msd
