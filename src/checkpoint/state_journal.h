// StepStateJournal: a bounded ring of per-step data-plane rewind points.
//
// The prefetch pipeline produces (plans + pops) steps ahead of what training
// has consumed, so at checkpoint time the loaders' live read-state is
// *newer* than the step the job may safely commit (the retirement frontier
// C: everything below it fully consumed, everything at or above it not yet).
// A durable checkpoint must therefore rewind the data plane to "state after
// step C-1". Reconstructing that from scratch would mean replaying every
// plan since step 0; instead the Session records, after producing each step
// s, the tiny replayable state the plane had at that point:
//   - the Planner's PCG32 word + monotonic plan cursor, and
//   - every Source Loader's differential snapshot (read cursor + consumed
//     ids — deterministic refill rebuilds the exact buffer from these).
// The ring only needs to span the build-ahead window (prefetch depth), so a
// checkpoint at any commit frontier finds its rewind point in O(1).
#ifndef SRC_CHECKPOINT_STATE_JOURNAL_H_
#define SRC_CHECKPOINT_STATE_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/planner/planner.h"

namespace msd {

// State of the whole data plane as of "step s fully produced": what a job
// resuming at step s+1 restores before replanning/re-popping.
struct StepStateEntry {
  int64_t step = -1;
  PlannerCheckpoint planner;                        // as of after plan `step`
  std::map<int32_t, std::string> loader_snapshots;  // loader_id -> snapshot bytes
};

class StepStateJournal {
 public:
  // `capacity` must cover the maximum distance between the commit frontier
  // and the produce frontier (prefetch depth) plus slack.
  explicit StepStateJournal(size_t capacity);

  // Records the state after producing `entry.step`. Steps must arrive in
  // increasing order (the pipeline producer is strictly sequential); the
  // oldest entry falls off once the ring is full.
  void Record(StepStateEntry entry);

  std::optional<StepStateEntry> EntryFor(int64_t step) const;
  int64_t newest_step() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::deque<StepStateEntry> entries_;
};

}  // namespace msd

#endif  // SRC_CHECKPOINT_STATE_JOURNAL_H_
