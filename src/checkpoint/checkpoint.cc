#include "src/checkpoint/checkpoint.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/storage/wire.h"

namespace msd {

namespace {

constexpr uint64_t kManifestMagic = 0x314B504344534DULL;  // "MSDCPK1"

std::string ManifestKey(const std::string& id) { return id + "/manifest"; }
std::string LoaderKey(const std::string& id, int32_t loader_id) {
  return id + "/loader/" + std::to_string(loader_id);
}
std::string JournalKey(const std::string& id, int64_t step) {
  return id + "/journal/" + std::to_string(step);
}

void PutPlannerState(WireWriter& w, const PlannerCheckpoint& p) {
  w.PutU64(p.rng_state);
  w.PutI64(p.next_unplanned);
  w.PutI64(p.plans_generated);
  // Quarantine state (format v2): plan generation depends on it, so a
  // resumed job must renormalize over the same surviving sources.
  w.PutU32(static_cast<uint32_t>(p.quarantined.size()));
  for (const auto& [loader_id, since_step] : p.quarantined) {
    w.PutI64(loader_id);
    w.PutI64(since_step);
  }
  w.PutU32(static_cast<uint32_t>(p.gather_failures.size()));
  for (const auto& [loader_id, failures] : p.gather_failures) {
    w.PutI64(loader_id);
    w.PutI64(failures);
  }
  // Mixture re-weighting overrides (format v3): the schedule structure is
  // rebuilt from job options, but client-fed overrides arrived at runtime —
  // plan generation depends on them, so resume must replay the map.
  w.PutU32(static_cast<uint32_t>(p.mixture_overrides.size()));
  for (const auto& [step, weights] : p.mixture_overrides) {
    w.PutI64(step);
    w.PutPodArray(weights.data(), weights.size());
  }
}

PlannerCheckpoint GetPlannerState(WireReader& r) {
  PlannerCheckpoint p;
  p.rng_state = r.GetU64();
  p.next_unplanned = r.GetI64();
  p.plans_generated = r.GetI64();
  const uint32_t n_quarantined = r.GetU32();
  for (uint32_t i = 0; i < n_quarantined && r.Ok(); ++i) {
    const int64_t loader_id = r.GetI64();
    p.quarantined[static_cast<int32_t>(loader_id)] = r.GetI64();
  }
  const uint32_t n_failures = r.GetU32();
  for (uint32_t i = 0; i < n_failures && r.Ok(); ++i) {
    const int64_t loader_id = r.GetI64();
    p.gather_failures[static_cast<int32_t>(loader_id)] = static_cast<int32_t>(r.GetI64());
  }
  const uint32_t n_overrides = r.GetU32();
  for (uint32_t i = 0; i < n_overrides && r.Ok(); ++i) {
    const int64_t step = r.GetI64();
    std::vector<double> weights;
    r.GetPodArray(&weights);
    p.mixture_overrides[step] = std::move(weights);
  }
  return p;
}

Result<std::string> ReadBlob(const ObjectStore& store, const std::string& key) {
  Result<FileHandle> handle = store.Open(key, 0);
  if (!handle.ok()) {
    return handle.status();
  }
  return handle.value().Contents();
}

}  // namespace

CheckpointWriter::CheckpointWriter(ObjectStore* store, Options options)
    : store_(store), options_(options) {
  MSD_CHECK(store_ != nullptr);
}

Result<std::string> CheckpointWriter::Write(const CheckpointState& state) {
  // Checkpoint ids are ordered by a monotonic sequence number so LATEST can
  // be re-derived by a human (or a cleanup tool) even if the pointer blob is
  // lost: ckpt-<seq>-s<commit_step>.
  int64_t seq = 0;
  for (const std::string& name : store_->List("ckpt-")) {
    // name = "ckpt-<seq>-s<step>/...": parse the sequence field.
    size_t dash = name.find('-', 5);
    if (name.rfind("ckpt-", 0) == 0 && dash != std::string::npos) {
      seq = std::max<int64_t>(seq, std::strtoll(name.c_str() + 5, nullptr, 10));
    }
  }
  const std::string id =
      "ckpt-" + std::to_string(seq + 1) + "-s" + std::to_string(state.commit_step);

  // Phase 1: stage every component blob (each Put is itself atomic).
  struct BlobRecord {
    std::string key;
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  std::vector<BlobRecord> loader_blobs;
  for (const auto& [loader_id, bytes] : state.loader_snapshots) {
    BlobRecord rec{LoaderKey(id, loader_id), bytes.size(), Fnv1a64(bytes)};
    MSD_RETURN_IF_ERROR(store_->Put(rec.key, bytes));
    loader_blobs.push_back(std::move(rec));
  }
  std::vector<BlobRecord> journal_blobs;
  for (const auto& [step, bytes] : state.plan_journal) {
    BlobRecord rec{JournalKey(id, step), bytes.size(), Fnv1a64(bytes)};
    MSD_RETURN_IF_ERROR(store_->Put(rec.key, bytes));
    journal_blobs.push_back(std::move(rec));
  }

  // Phase 2: the manifest, carrying the frontier, both planner states, the
  // fingerprint, and size+checksum for every staged blob.
  WireWriter w;
  w.PutU64(kManifestMagic);
  w.PutU32(kCheckpointFormatVersion);
  w.PutI64(state.commit_step);
  w.PutI64(state.produce_frontier);
  w.PutU32(static_cast<uint32_t>(state.mesh.dp));
  w.PutU32(static_cast<uint32_t>(state.mesh.pp));
  w.PutU32(static_cast<uint32_t>(state.mesh.cp));
  w.PutU32(static_cast<uint32_t>(state.mesh.tp));
  w.PutU32(static_cast<uint32_t>(state.prefetch_depth));
  w.PutU32(static_cast<uint32_t>(state.cursors.size()));
  for (int64_t cursor : state.cursors) {
    w.PutI64(cursor);
  }
  PutPlannerState(w, state.planner_at_commit);
  PutPlannerState(w, state.planner_at_frontier);
  w.PutU8(state.fault_tolerance ? 1 : 0);
  w.PutI64(state.ft_snapshots_taken);
  w.PutI64(state.ft_promotions);
  w.PutU64(state.fingerprint.corpus_hash);
  w.PutU64(state.fingerprint.seed);
  w.PutI64(state.fingerprint.samples_per_step);
  w.PutU32(static_cast<uint32_t>(state.fingerprint.max_seq_len));
  w.PutU32(static_cast<uint32_t>(state.fingerprint.num_microbatches));
  w.PutU32(static_cast<uint32_t>(state.fingerprint.loader_workers));
  w.PutU8(state.fingerprint.strategy);
  w.PutU8(state.fingerprint.balance_method);
  w.PutU8(state.fingerprint.defer_image_decode);
  w.PutU32(static_cast<uint32_t>(loader_blobs.size()));
  {
    size_t i = 0;  // loader_blobs was built in loader_snapshots order
    for (const auto& [loader_id, bytes] : state.loader_snapshots) {
      (void)bytes;
      w.PutU32(static_cast<uint32_t>(loader_id));
      w.PutU64(loader_blobs[i].size);
      w.PutU64(loader_blobs[i].checksum);
      ++i;
    }
  }
  w.PutU32(static_cast<uint32_t>(journal_blobs.size()));
  {
    size_t i = 0;
    for (const auto& [step, bytes] : state.plan_journal) {
      (void)bytes;
      w.PutI64(step);
      w.PutU64(journal_blobs[i].size);
      w.PutU64(journal_blobs[i].checksum);
      ++i;
    }
  }
  // Self-checksum over everything above, appended last: the manifest is the
  // one blob nothing else can vouch for.
  w.PutU64(Fnv1a64(w.buffer()));
  MSD_RETURN_IF_ERROR(store_->Put(ManifestKey(id), w.Take()));

  // Phase 3: atomically flip LATEST. Everything before this line is
  // invisible to readers; a crash here costs nothing but orphaned blobs.
  if (options_.abort_before_publish) {
    MSD_LOG_WARN("checkpoint %s staged but NOT published (crash injection)", id.c_str());
    return id;
  }
  MSD_RETURN_IF_ERROR(store_->Put(kCheckpointLatestKey, id));

  // Phase 4 (optional): retention GC, only after the flip succeeded — an
  // aborted publish must never cost the previous checkpoint its blobs.
  if (options_.keep_generations > 0) {
    GarbageCollect();
  }
  return id;
}

void CheckpointWriter::GarbageCollect() const {
  // Generations are the distinct "ckpt-<seq>-s<step>" prefixes; order by seq.
  Result<std::string> latest = CheckpointReader::LatestId(*store_);
  std::map<int64_t, std::string> generations;
  std::vector<std::string> names = store_->List("ckpt-");
  for (const std::string& name : names) {
    size_t slash = name.find('/');
    size_t dash = name.find('-', 5);
    if (slash == std::string::npos || dash == std::string::npos || dash > slash) {
      continue;
    }
    generations.emplace(std::strtoll(name.c_str() + 5, nullptr, 10),
                        name.substr(0, slash));
  }
  if (static_cast<int64_t>(generations.size()) <= options_.keep_generations) {
    return;
  }
  int64_t to_delete =
      static_cast<int64_t>(generations.size()) - options_.keep_generations;
  for (const auto& [seq, gen] : generations) {
    if (to_delete <= 0) {
      break;
    }
    --to_delete;  // generations iterates oldest-first
    if (latest.ok() && gen == latest.value()) {
      // Never delete what LATEST names, even if newer staged (unpublished)
      // generations outrank it by sequence number.
      continue;
    }
    for (const std::string& name : names) {
      if (name.rfind(gen + "/", 0) == 0) {
        store_->Delete(name);  // best-effort; leftovers retried next GC
      }
    }
  }
}

Result<std::string> CheckpointReader::LatestId(const ObjectStore& store) {
  Result<std::string> latest = ReadBlob(store, kCheckpointLatestKey);
  if (!latest.ok()) {
    return Status::NotFound("no published checkpoint (missing LATEST pointer)");
  }
  return latest;
}

Result<CheckpointState> CheckpointReader::Load(const ObjectStore& store) {
  Result<std::string> id = LatestId(store);
  if (!id.ok()) {
    return id.status();
  }
  return LoadId(store, id.value());
}

Result<CheckpointState> CheckpointReader::LoadId(const ObjectStore& store,
                                                const std::string& id) {
  Result<std::string> manifest = ReadBlob(store, ManifestKey(id));
  if (!manifest.ok()) {
    return Status::NotFound("checkpoint " + id + " has no manifest: " +
                            manifest.status().ToString());
  }
  const std::string& manifest_bytes = manifest.value();
  if (manifest_bytes.size() < sizeof(uint64_t)) {
    return Status::DataLoss("checkpoint " + id + ": manifest too small");
  }
  // Verify the trailing self-checksum before trusting any field: a bit flip
  // in a cursor or frontier must surface as DataLoss, not a wrong restore.
  const size_t body_size = manifest_bytes.size() - sizeof(uint64_t);
  WireReader tail(manifest_bytes, body_size);
  if (tail.GetU64() != Fnv1a64(std::string_view(manifest_bytes).substr(0, body_size))) {
    return Status::DataLoss("checkpoint " + id + ": manifest checksum mismatch");
  }
  WireReader r(std::string_view(manifest_bytes).substr(0, body_size));
  if (r.GetU64() != kManifestMagic) {
    return Status::DataLoss("checkpoint " + id + ": bad manifest magic");
  }
  uint32_t version = r.GetU32();
  if (version != kCheckpointFormatVersion) {
    return Status::DataLoss("checkpoint " + id + ": format version " +
                            std::to_string(version) + " unsupported (expected " +
                            std::to_string(kCheckpointFormatVersion) + ")");
  }
  CheckpointState state;
  state.commit_step = r.GetI64();
  state.produce_frontier = r.GetI64();
  state.mesh.dp = static_cast<int32_t>(r.GetU32());
  state.mesh.pp = static_cast<int32_t>(r.GetU32());
  state.mesh.cp = static_cast<int32_t>(r.GetU32());
  state.mesh.tp = static_cast<int32_t>(r.GetU32());
  state.prefetch_depth = static_cast<int32_t>(r.GetU32());
  uint32_t n_cursors = r.GetU32();
  if (static_cast<uint64_t>(n_cursors) * sizeof(int64_t) > r.remaining()) {
    return Status::DataLoss("checkpoint " + id + ": cursor count exceeds manifest");
  }
  state.cursors.reserve(n_cursors);
  for (uint32_t i = 0; i < n_cursors; ++i) {
    state.cursors.push_back(r.GetI64());
  }
  state.planner_at_commit = GetPlannerState(r);
  state.planner_at_frontier = GetPlannerState(r);
  state.fault_tolerance = r.GetU8() != 0;
  state.ft_snapshots_taken = r.GetI64();
  state.ft_promotions = r.GetI64();
  state.fingerprint.corpus_hash = r.GetU64();
  state.fingerprint.seed = r.GetU64();
  state.fingerprint.samples_per_step = r.GetI64();
  state.fingerprint.max_seq_len = static_cast<int32_t>(r.GetU32());
  state.fingerprint.num_microbatches = static_cast<int32_t>(r.GetU32());
  state.fingerprint.loader_workers = static_cast<int32_t>(r.GetU32());
  state.fingerprint.strategy = r.GetU8();
  state.fingerprint.balance_method = r.GetU8();
  state.fingerprint.defer_image_decode = r.GetU8();

  struct PendingBlob {
    std::string key;
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  uint32_t n_loaders = r.GetU32();
  if (static_cast<uint64_t>(n_loaders) * 20 > r.remaining()) {
    return Status::DataLoss("checkpoint " + id + ": loader table exceeds manifest");
  }
  std::map<int32_t, PendingBlob> loader_table;
  for (uint32_t i = 0; i < n_loaders; ++i) {
    int32_t loader_id = static_cast<int32_t>(r.GetU32());
    PendingBlob blob{LoaderKey(id, loader_id), r.GetU64(), r.GetU64()};
    loader_table.emplace(loader_id, std::move(blob));
  }
  uint32_t n_journal = r.GetU32();
  if (static_cast<uint64_t>(n_journal) * 24 > r.remaining()) {
    return Status::DataLoss("checkpoint " + id + ": journal table exceeds manifest");
  }
  std::map<int64_t, PendingBlob> journal_table;
  for (uint32_t i = 0; i < n_journal; ++i) {
    int64_t step = r.GetI64();
    PendingBlob blob{JournalKey(id, step), r.GetU64(), r.GetU64()};
    journal_table.emplace(step, std::move(blob));
  }
  if (!r.Ok()) {
    return Status::DataLoss("checkpoint " + id + ": truncated manifest");
  }

  // Fetch + verify every referenced blob.
  for (const auto& [loader_id, blob] : loader_table) {
    Result<std::string> bytes = ReadBlob(store, blob.key);
    if (!bytes.ok()) {
      return Status::DataLoss("checkpoint " + id + ": missing blob " + blob.key);
    }
    if (bytes.value().size() != blob.size || Fnv1a64(bytes.value()) != blob.checksum) {
      return Status::DataLoss("checkpoint " + id + ": checksum mismatch in " + blob.key);
    }
    state.loader_snapshots.emplace(loader_id, std::move(bytes.value()));
  }
  for (const auto& [step, blob] : journal_table) {
    Result<std::string> bytes = ReadBlob(store, blob.key);
    if (!bytes.ok()) {
      return Status::DataLoss("checkpoint " + id + ": missing blob " + blob.key);
    }
    if (bytes.value().size() != blob.size || Fnv1a64(bytes.value()) != blob.checksum) {
      return Status::DataLoss("checkpoint " + id + ": checksum mismatch in " + blob.key);
    }
    state.plan_journal.emplace(step, std::move(bytes.value()));
  }
  return state;
}

}  // namespace msd
